// Tests for the distributed FCI driver: the parallel sigma must be
// numerically identical to the serial one for every rank count and both
// algorithms; simulated time must show the paper's scaling shapes
// (DGEMM scales, replicated MOC same-spin does not); the full parallel
// solve must reproduce the serial energy.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/molecule.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci_parallel/parallel_fci.hpp"
#include "integrals/basis.hpp"
#include "scf/scf.hpp"

namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;
namespace fcp = xfci::fcp;

namespace {

// Shared medium test system: Be atom in a split basis -> D2h symmetry,
// a few thousand determinants.
const xi::IntegralTables& be_tables() {
  static const xi::IntegralTables t = [] {
    const auto mol = xc::Molecule::from_xyz_bohr("Be 0 0 0\n");
    const auto basis = xi::BasisSet::build("x-dz", mol);
    return xfci::scf::prepare_mo_system(mol, basis, 1).tables;
  }();
  return t;
}

// Open-shell variant (B-like occupation on Be tables is fine for sigma
// identity tests; 3 alpha / 1 beta).
struct ParCase {
  std::size_t nranks;
  xf::Algorithm alg;
};

}  // namespace

class ParallelInvariance : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParallelInvariance, SigmaMatchesSerial) {
  const auto [nranks, alg] = GetParam();
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);

  auto serial = xf::make_sigma(alg, ctx);
  fcp::ParallelOptions opt;
  opt.num_ranks = nranks;
  opt.algorithm = alg;
  fcp::ParallelSigma parallel(ctx, opt);

  xfci::Rng rng(17);
  const auto c = rng.signed_vector(space.dimension());
  std::vector<double> s1(c.size()), s2(c.size());
  serial->apply(c, s1);
  parallel.apply(c, s2);

  double dmax = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    dmax = std::max(dmax, std::abs(s1[i] - s2[i]));
    norm = std::max(norm, std::abs(s1[i]));
  }
  EXPECT_LT(dmax, 1e-11 * std::max(1.0, norm))
      << "P=" << nranks << " alg=" << xf::algorithm_name(alg);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParallelInvariance,
    ::testing::Values(ParCase{1, xf::Algorithm::kDgemm},
                      ParCase{2, xf::Algorithm::kDgemm},
                      ParCase{3, xf::Algorithm::kDgemm},
                      ParCase{5, xf::Algorithm::kDgemm},
                      ParCase{8, xf::Algorithm::kDgemm},
                      ParCase{16, xf::Algorithm::kDgemm},
                      ParCase{1, xf::Algorithm::kMoc},
                      ParCase{2, xf::Algorithm::kMoc},
                      ParCase{4, xf::Algorithm::kMoc},
                      ParCase{7, xf::Algorithm::kMoc}));

TEST(ParallelFci, OpenShellSigmaMatchesSerial) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 3, 1, tables.group,
                          tables.orbital_irreps, 2);
  const xf::SigmaContext ctx(space, tables);
  auto serial = xf::make_sigma(xf::Algorithm::kDgemm, ctx);
  fcp::ParallelOptions opt;
  opt.num_ranks = 6;
  fcp::ParallelSigma parallel(ctx, opt);

  xfci::Rng rng(23);
  const auto c = rng.signed_vector(space.dimension());
  std::vector<double> s1(c.size()), s2(c.size());
  serial->apply(c, s1);
  parallel.apply(c, s2);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(s2[i], s1[i], 1e-11);
}

TEST(ParallelFci, AllAlphaEdgeCaseMatchesSerial) {
  // nbeta = 0: the mixed-spin phase vanishes and the beta-side kernels
  // no-op; the alpha-side path must still reproduce the serial sigma.
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 3, 0, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  auto serial = xf::make_sigma(xf::Algorithm::kDgemm, ctx);
  fcp::ParallelOptions opt;
  opt.num_ranks = 5;
  fcp::ParallelSigma parallel(ctx, opt);

  xfci::Rng rng(31);
  const auto c = rng.signed_vector(space.dimension());
  std::vector<double> s1(c.size()), s2(c.size());
  serial->apply(c, s1);
  parallel.apply(c, s2);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(s2[i], s1[i], 1e-12);
}

TEST(ParallelFci, SimulatedTimeIsDeterministic) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  fcp::ParallelOptions opt;
  opt.num_ranks = 8;

  double elapsed[2];
  for (int trial = 0; trial < 2; ++trial) {
    fcp::ParallelSigma op(ctx, opt);
    xfci::Rng rng(5);
    const auto c = rng.signed_vector(space.dimension());
    std::vector<double> s(c.size());
    op.apply(c, s);
    elapsed[trial] = op.ddi().elapsed();
  }
  EXPECT_DOUBLE_EQ(elapsed[0], elapsed[1]);
  EXPECT_GT(elapsed[0], 0.0);
}

TEST(ParallelFci, DgemmSigmaScalesMocSameSpinDoesNot) {
  // The Fig. 4 shape: doubling ranks roughly halves the DGEMM sigma time,
  // while the replicated MOC same-spin phase stays flat.
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 3, 3, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(9);
  const auto c = rng.signed_vector(space.dimension());

  auto run = [&](std::size_t p, xf::Algorithm alg) {
    fcp::ParallelOptions opt;
    opt.num_ranks = p;
    opt.algorithm = alg;
    fcp::ParallelSigma op(ctx, opt);
    std::vector<double> s(c.size());
    op.apply(c, s);
    return op.breakdown();
  };

  const auto d4 = run(4, xf::Algorithm::kDgemm);
  const auto d16 = run(16, xf::Algorithm::kDgemm);
  // Mixed-spin (dominant phase) speeds up substantially.
  EXPECT_LT(d16.mixed, 0.5 * d4.mixed);

  const auto m4 = run(4, xf::Algorithm::kMoc);
  const auto m16 = run(16, xf::Algorithm::kMoc);
  // Replicated element generation: the same-spin phases barely improve.
  const double ss4 = m4.beta_side + m4.alpha_side;
  const double ss16 = m16.beta_side + m16.alpha_side;
  EXPECT_GT(ss16, 0.6 * ss4);
  // And MOC is slower than DGEMM at the same rank count.
  EXPECT_GT(m16.total, d16.total);
}

TEST(ParallelFci, CommunicationCountsMatchTable1Model) {
  // DGEMM mixed-spin moves ~3 Nci Nalpha words (1x gather + 2x accumulate);
  // MOC moves ~Nci Nalpha (n - Nalpha) gather words.  Check the measured
  // counter ratios against the model within a factor allowing for symmetry
  // blocking and boundary effects.
  const auto& tables = be_tables();
  const std::size_t na = 2, nb = 2;
  const xf::CiSpace space(tables.norb, na, nb, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(3);
  const auto c = rng.signed_vector(space.dimension());

  auto comm_of = [&](xf::Algorithm alg) {
    fcp::ParallelOptions opt;
    opt.num_ranks = 4;
    opt.algorithm = alg;
    fcp::ParallelSigma op(ctx, opt);
    std::vector<double> s(c.size());
    op.apply(c, s);
    // Only the mixed phase moves per-column traffic; subtract nothing and
    // compare orders of magnitude.
    double words = 0.0;
    for (std::size_t r = 0; r < 4; ++r) {
      const auto& cc = op.ddi().counters(r);
      words += cc.get_words + 2.0 * cc.acc_words;
    }
    return words;
  };

  const double dgemm_words = comm_of(xf::Algorithm::kDgemm);
  const double moc_words = comm_of(xf::Algorithm::kMoc);
  // n = 16-ish orbitals: MOC should move several times more data.
  EXPECT_GT(moc_words, 2.0 * dgemm_words);
}

TEST(ParallelFci, FullSolveMatchesSerialEnergy) {
  const auto& tables = be_tables();
  const auto serial = xf::run_fci(tables, 2, 2, 0);
  ASSERT_TRUE(serial.solve.converged);

  fcp::ParallelOptions opt;
  opt.num_ranks = 8;
  const auto par = fcp::run_parallel_fci(tables, 2, 2, 0, opt);
  EXPECT_TRUE(par.solve.converged);
  EXPECT_NEAR(par.solve.energy, serial.solve.energy, 1e-9);
  EXPECT_EQ(par.dimension, serial.dimension);
  EXPECT_GT(par.total_seconds, 0.0);
  EXPECT_GT(par.gflops_per_rank, 0.0);
  // Breakdown rows were populated.
  EXPECT_GT(par.per_sigma.mixed, 0.0);
  EXPECT_GT(par.per_sigma.beta_side, 0.0);
  EXPECT_GT(par.per_sigma.transpose, 0.0);
}

TEST(ParallelFci, SpeedupImprovesWithRanks) {
  // Fig. 5 shape: near-linear speedup of the full DGEMM iteration.
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 3, 3, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(1);
  const auto c = rng.signed_vector(space.dimension());

  auto time_of = [&](std::size_t p) {
    fcp::ParallelOptions opt;
    opt.num_ranks = p;
    fcp::ParallelSigma op(ctx, opt);
    std::vector<double> s(c.size());
    op.apply(c, s);
    return op.ddi().elapsed();
  };
  const double t2 = time_of(2);
  const double t8 = time_of(8);
  const double speedup = t2 / t8;
  // Ideal would be 4; demand at least 2.2 on this small problem.
  EXPECT_GT(speedup, 2.2);
}

TEST(ParallelFci, AggregationReducesDlbTraffic) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 3, 3, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(2);
  const auto c = rng.signed_vector(space.dimension());

  auto dlb_calls = [&](bool aggregate) {
    fcp::ParallelOptions opt;
    opt.num_ranks = 8;
    opt.lb.aggregate = aggregate;
    fcp::ParallelSigma op(ctx, opt);
    std::vector<double> s(c.size());
    op.apply(c, s);
    std::size_t calls = 0;
    for (std::size_t r = 0; r < 8; ++r)
      calls += op.ddi().counters(r).dlb_calls;
    return calls;
  };
  EXPECT_LT(dlb_calls(true), dlb_calls(false));
}
