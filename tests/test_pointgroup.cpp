// Tests for the abelian point-group machinery: group construction,
// character tables, products, detection, and atom mappings.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "chem/pointgroup.hpp"
#include "common/error.hpp"

namespace xc = xfci::chem;

namespace {

xc::Molecule water() {
  // C2v with z the C2 axis, molecule in the xz plane.
  return xc::Molecule::from_xyz_bohr(
      "O 0.0 0.0 0.0\n"
      "H 1.43 0.0 1.108\n"
      "H -1.43 0.0 1.108\n");
}

}  // namespace

class GroupOrderTest
    : public ::testing::TestWithParam<std::pair<const char*, std::size_t>> {};

TEST_P(GroupOrderTest, OrderAndIrrepCount) {
  const auto [name, order] = GetParam();
  const auto g = xc::PointGroup::make(name);
  EXPECT_EQ(g.order(), order);
  EXPECT_EQ(g.num_irreps(), order);
  EXPECT_EQ(g.name(), name);
}

INSTANTIATE_TEST_SUITE_P(
    AllGroups, GroupOrderTest,
    ::testing::Values(std::pair{"C1", 1ul}, std::pair{"Ci", 2ul},
                      std::pair{"Cs", 2ul}, std::pair{"C2", 2ul},
                      std::pair{"C2v", 4ul}, std::pair{"C2h", 4ul},
                      std::pair{"D2", 4ul}, std::pair{"D2h", 8ul}));

TEST(PointGroup, TrivialIrrepIsIndexZero) {
  for (const char* name : {"C1", "Ci", "Cs", "C2", "C2v", "C2h", "D2", "D2h"}) {
    const auto g = xc::PointGroup::make(name);
    for (std::size_t o = 0; o < g.order(); ++o)
      EXPECT_EQ(g.character(0, o), 1) << name;
  }
}

TEST(PointGroup, ProductTableIsAbelianGroup) {
  for (const char* name : {"Cs", "C2v", "C2h", "D2", "D2h"}) {
    const auto g = xc::PointGroup::make(name);
    const std::size_t n = g.num_irreps();
    for (std::size_t a = 0; a < n; ++a) {
      // Identity: a x 0 = a.  Self-inverse: a x a = 0 (real 1D irreps).
      EXPECT_EQ(g.product(a, 0), a) << name;
      EXPECT_EQ(g.product(a, a), 0u) << name;
      for (std::size_t b = 0; b < n; ++b) {
        EXPECT_EQ(g.product(a, b), g.product(b, a)) << name;
        // Characters multiply: chi_ab(o) = chi_a(o) chi_b(o).
        const std::size_t ab = g.product(a, b);
        for (std::size_t o = 0; o < g.order(); ++o)
          EXPECT_EQ(g.character(ab, o),
                    g.character(a, o) * g.character(b, o))
              << name;
      }
    }
  }
}

TEST(PointGroup, D2hMullikenLabels) {
  const auto g = xc::PointGroup::make("D2h");
  std::vector<std::string> names;
  for (std::size_t h = 0; h < 8; ++h) names.push_back(g.irrep_name(h));
  // All canonical labels present exactly once.
  for (const char* expect : {"Ag", "B1g", "B2g", "B3g", "Au", "B1u", "B2u",
                             "B3u"}) {
    EXPECT_EQ(std::count(names.begin(), names.end(), expect), 1)
        << "missing " << expect;
  }
  EXPECT_EQ(g.irrep_name(0), "Ag");
}

TEST(PointGroup, D2hProductExamples) {
  const auto g = xc::PointGroup::make("D2h");
  auto idx = [&](const std::string& n) {
    for (std::size_t h = 0; h < g.num_irreps(); ++h)
      if (g.irrep_name(h) == n) return h;
    ADD_FAILURE() << "no irrep " << n;
    return std::size_t{0};
  };
  // B1u x B1u = Ag;  B3u x B2u = B1g;  Au x B1u = B1g?  No: Au x B1u = B1g
  // is wrong -- Au x B1u: chi products give B1g only if ... verify via the
  // physical rule z x z = Ag, x x y = (xy) = B1g, xyz x z = (xy) = B1g.
  EXPECT_EQ(g.product(idx("B1u"), idx("B1u")), idx("Ag"));
  EXPECT_EQ(g.product(idx("B3u"), idx("B2u")), idx("B1g"));
  EXPECT_EQ(g.product(idx("Au"), idx("B1u")), idx("B1g"));
  EXPECT_EQ(g.product(idx("B2g"), idx("B3g")), idx("B1g"));
  EXPECT_EQ(g.product(idx("B1g"), idx("B2g")), idx("B3g"));
}

TEST(PointGroup, C2vLabels) {
  const auto g = xc::PointGroup::make("C2v");
  EXPECT_EQ(g.irrep_name(0), "A1");
  std::vector<std::string> names;
  for (std::size_t h = 0; h < 4; ++h) names.push_back(g.irrep_name(h));
  for (const char* expect : {"A1", "A2", "B1", "B2"})
    EXPECT_EQ(std::count(names.begin(), names.end(), expect), 1);
}

TEST(Detect, WaterIsC2v) {
  EXPECT_EQ(xc::PointGroup::detect(water()).name(), "C2v");
}

TEST(Detect, HomonuclearDiatomicOnZAxisIsD2h) {
  const auto mol = xc::Molecule::from_xyz_bohr(
      "C 0.0 0.0 1.2\n"
      "C 0.0 0.0 -1.2\n");
  EXPECT_EQ(xc::PointGroup::detect(mol).name(), "D2h");
}

TEST(Detect, HeteronuclearDiatomicIsC2v) {
  const auto mol = xc::Molecule::from_xyz_bohr(
      "C 0.0 0.0 0.0\n"
      "N 0.0 0.0 2.2\n");
  EXPECT_EQ(xc::PointGroup::detect(mol).name(), "C2v");
}

TEST(Detect, SingleAtomIsD2h) {
  const auto mol = xc::Molecule::from_xyz_bohr("O 0.0 0.0 0.0\n");
  EXPECT_EQ(xc::PointGroup::detect(mol).name(), "D2h");
}

TEST(Detect, AsymmetricMoleculeIsC1) {
  const auto mol = xc::Molecule::from_xyz_bohr(
      "O 0.1 0.2 0.3\n"
      "H 1.0 0.0 0.0\n"
      "H 0.0 1.3 0.7\n");
  EXPECT_EQ(xc::PointGroup::detect(mol).name(), "C1");
}

TEST(AtomMapping, WaterHydrogenSwap) {
  const auto mol = water();
  const auto g = xc::PointGroup::detect(mol);
  // Find the C2z operation and verify it swaps the hydrogens.
  for (std::size_t o = 0; o < g.order(); ++o) {
    if (g.ops()[o].name() == "C2z") {
      const auto map = g.atom_mapping(mol, o);
      EXPECT_EQ(map[0], 0u);
      EXPECT_EQ(map[1], 2u);
      EXPECT_EQ(map[2], 1u);
      return;
    }
  }
  FAIL() << "C2z not found in detected group";
}

TEST(AtomMapping, ThrowsForNonInvariantMolecule) {
  const auto mol = xc::Molecule::from_xyz_bohr(
      "O 0.0 0.0 0.0\n"
      "H 1.0 0.0 0.5\n");
  const auto d2h = xc::PointGroup::make("D2h");
  // The inversion cannot map this molecule onto itself.
  bool threw = false;
  for (std::size_t o = 0; o < d2h.order(); ++o) {
    if (d2h.ops()[o].name() == "i") {
      try {
        d2h.atom_mapping(mol, o);
      } catch (const xfci::Error&) {
        threw = true;
      }
    }
  }
  EXPECT_TRUE(threw);
}

TEST(SymOp, ApplyFlipsCoordinates) {
  // i negates everything.
  const xc::SymOp inv{7};
  const auto p = inv.apply({1.0, -2.0, 3.0});
  EXPECT_DOUBLE_EQ(p[0], -1.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
  EXPECT_DOUBLE_EQ(p[2], -3.0);
}

TEST(IrrepFromCharacters, RoundTripsAllIrreps) {
  const auto g = xc::PointGroup::make("D2h");
  for (std::size_t h = 0; h < g.num_irreps(); ++h) {
    std::vector<int> chi(g.order());
    for (std::size_t o = 0; o < g.order(); ++o) chi[o] = g.character(h, o);
    EXPECT_EQ(g.irrep_from_characters(chi), h);
  }
}
