// Tests for the multi-process DDI backend (parallel/process_ddi.hpp): the
// shm arena pool protocol across real fork boundaries, the failure domain
// (actual SIGKILLs mid-operation and mid-publish, watchdog kills, barrier
// deadline degradation, STONITH fencing of wedged ranks), orphan hygiene
// (stale-segment reaping, no leaked /dev/shm entries on any path), and the
// end-to-end contract: the FCI sigma and solve are bitwise / 1e-10
// identical to the simulated backend even while live rank processes are
// being killed.
//
// gtest assertions inside PoolHooks::stage/pack run in the forked child
// and would be invisible to the parent test binary, so every check here is
// made parent-side (in unpack/commit, or after run_pool returns).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci_parallel/parallel_fci.hpp"
#include "integrals/basis.hpp"
#include "parallel/process_ddi.hpp"
#include "parallel/shm_ipc.hpp"
#include "parallel/task_pool.hpp"
#include "scf/scf.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#endif

// The backend's children are SIGKILL'd by design; tsan's runtime does not
// model fork+shm and would report on its own bookkeeping, so the fork
// tests are skipped under it (the tsan ctest preset also filters them out
// by name).
#if defined(__SANITIZE_THREAD__)
#define XFCI_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XFCI_TSAN 1
#endif
#endif
#ifndef XFCI_TSAN
#define XFCI_TSAN 0
#endif

namespace pv = xfci::pv;
namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;
namespace fcp = xfci::fcp;

#define XFCI_REQUIRE_PROCESS_HOST()                                       \
  do {                                                                    \
    if (XFCI_TSAN)                                                        \
      GTEST_SKIP() << "fork-based backend tests are skipped under tsan";  \
    if (!pv::process_backend_supported())                                 \
      GTEST_SKIP() << "process backend unsupported on this platform";     \
  } while (false)

namespace {

/// usleep shim: the fork tests never run off-POSIX (the skip macro fires
/// first), but the file must still compile there.
void spin_micros(std::size_t micros) {
#if defined(__unix__) || defined(__APPLE__)
  ::usleep(static_cast<unsigned>(micros));
#else
  (void)micros;
#endif
}

/// Deadlines tightened from the production defaults so fencing paths run
/// in test time, but generous enough not to flake on a loaded machine.
pv::ProcessDdiParams fast_params() {
  pv::ProcessDdiParams p;
  p.task_deadline = 10.0;
  p.heartbeat_deadline = 10.0;
  p.spawn_deadline = 10.0;
  p.shutdown_deadline = 10.0;
  p.poll_micros = 100;
  return p;
}

/// A driver for the direct pool-protocol tests: every item's "result" is a
/// 3-word payload that is a pure function of the item index, computed in
/// the forked child and checked after travelling through the shm arena.
struct PoolHarness {
  explicit PoolHarness(pv::Ddi& backend, std::size_t nitems)
      : ddi(backend),
        pool(nitems, backend.num_workers()),
        staged(3 * nitems, 0.0),
        out(nitems, 0.0),
        bad_unpacks(0) {}

  pv::Ddi::PoolStats run(std::size_t stage_micros = 0) {
    pv::Ddi::PoolHooks hooks;
    hooks.stage = [this, stage_micros](std::size_t it, std::size_t worker) {
      // Child-side compute into the child's copy-on-write staging, plus
      // one-sided traffic so the shm op accounting is exercised (and the
      // op-count fault triggers can fire mid-operation).
      if (ddi.get(worker, 0, 8.0) == pv::OpOutcome::kDropped &&
          !ddi.alive(worker))
        return false;
      const double v = static_cast<double>(it);
      staged[3 * it + 0] = 3.0 * v + 1.0;
      staged[3 * it + 1] = -v;
      staged[3 * it + 2] = v * v;
      if (stage_micros != 0)
        spin_micros(stage_micros);
      if (ddi.acc(worker, 0, 8.0) == pv::OpOutcome::kDropped &&
          !ddi.alive(worker))
        return false;
      return true;
    };
    hooks.stage_words = [](std::size_t) { return std::size_t{3}; };
    hooks.pack = [this](std::size_t it, double* dst) {
      for (int j = 0; j < 3; ++j) dst[j] = staged[3 * it + j];
      return std::size_t{3};
    };
    hooks.unpack = [this](std::size_t it, const double* src,
                          std::size_t words) {
      if (words != 3) {
        ++bad_unpacks;  // checked parent-side after the run
        return;
      }
      for (int j = 0; j < 3; ++j) staged[3 * it + j] = src[j];
    };
    hooks.commit = [this](std::size_t it) {
      out[it] = staged[3 * it + 0] + staged[3 * it + 1] + staged[3 * it + 2];
      commit_order.push_back(it);
    };
    return ddi.run_pool(pool, hooks);
  }

  void expect_all_items_committed_in_order() const {
    ASSERT_EQ(commit_order.size(), out.size());
    for (std::size_t it = 0; it < out.size(); ++it) {
      EXPECT_EQ(commit_order[it], it);
      const double v = static_cast<double>(it);
      EXPECT_EQ(out[it], (3.0 * v + 1.0) - v + v * v) << "item " << it;
    }
    EXPECT_EQ(bad_unpacks, 0);
  }

  pv::Ddi& ddi;
  pv::TaskPool pool;
  std::vector<double> staged;
  std::vector<double> out;
  std::vector<std::size_t> commit_order;
  int bad_unpacks;
};

const xi::IntegralTables& be_tables() {
  static const xi::IntegralTables t = [] {
    const auto mol = xc::Molecule::from_xyz_bohr("Be 0 0 0\n");
    const auto basis = xi::BasisSet::build("x-dz", mol);
    return xfci::scf::prepare_mo_system(mol, basis, 1).tables;
  }();
  return t;
}

std::vector<double> run_sigma(const xf::SigmaContext& ctx,
                              const fcp::ParallelOptions& opt,
                              std::span<const double> c) {
  fcp::ParallelSigma op(ctx, opt);
  std::vector<double> sigma(c.size());
  op.apply(c, sigma);
  return sigma;
}

}  // namespace

// ------------------------------------------------- pool protocol ----------

TEST(ProcessDdi, PoolResultsCrossAddressSpacesAndCommitInOrder) {
  XFCI_REQUIRE_PROCESS_HOST();
  auto ddi = pv::make_process_ddi(3, pv::FaultPlan{}, fast_params());
  EXPECT_STREQ(ddi->name(), "process");
  EXPECT_FALSE(ddi->models_cost());
  EXPECT_TRUE(ddi->concurrent());

  PoolHarness h(*ddi, 257);
  const auto st = h.run();
  h.expect_all_items_committed_in_order();
  EXPECT_EQ(st.tasks_reassigned, 0u);
  EXPECT_EQ(ddi->num_alive(), 3u);

  // One-sided accounting crossed the fork boundary: one get and one acc
  // per item, recorded in the shared counters from the children.
  std::size_t gets = 0, accs = 0, dlb = 0;
  for (std::size_t r = 0; r < ddi->num_ranks(); ++r) {
    gets += ddi->counters(r).get_calls;
    accs += ddi->counters(r).acc_calls;
    dlb += ddi->counters(r).dlb_calls;
  }
  EXPECT_EQ(gets, 257u);
  EXPECT_EQ(accs, 257u);
  EXPECT_GE(dlb, h.pool.num_chunks());
  EXPECT_EQ(ddi->comm_words(), 257.0 * 8.0 + 2.0 * 257.0 * 8.0);
  ddi.reset();
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessDdi, SigkillMidPublishLeavesTornWriteAndIsReassigned) {
  XFCI_REQUIRE_PROCESS_HOST();
  // Rank 0's first chunk claim dies by raise(SIGKILL) halfway through the
  // memcpy into its item slot: a genuinely torn shared-memory write.  The
  // seqlock/generation protocol must discard it and re-issue the chunk.
  pv::FaultPlan plan;
  plan.kill_worker_at_claim(0, 1);
  auto ddi = pv::make_process_ddi(2, plan, fast_params());

  PoolHarness h(*ddi, 128);
  const auto st = h.run(/*stage_micros=*/500);
  h.expect_all_items_committed_in_order();
  EXPECT_GE(st.tasks_reassigned, 1u);
  EXPECT_FALSE(ddi->alive(0));
  EXPECT_TRUE(ddi->alive(1));
  EXPECT_EQ(ddi->num_alive(), 1u);
  ddi.reset();
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessDdi, SigkillMidOneSidedOpIsDetectedAndRecovered) {
  XFCI_REQUIRE_PROCESS_HOST();
  // Rank 1 dies mid one-sided op (its 5th): the child SIGKILLs itself
  // inside ddi.get(), mid-stage, and the parent's waitpid watchdog must
  // pick up the corpse and reassign the chunk it was staging.
  pv::FaultPlan plan;
  plan.kill_rank_at_op(1, 5);
  auto ddi = pv::make_process_ddi(2, plan, fast_params());

  PoolHarness h(*ddi, 128);
  const auto st = h.run(/*stage_micros=*/500);
  h.expect_all_items_committed_in_order();
  EXPECT_GE(st.tasks_reassigned, 1u);
  EXPECT_FALSE(ddi->alive(1));
  EXPECT_EQ(ddi->num_alive(), 1u);
  ddi.reset();
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessDdi, WatchdogDeliversTimeTriggeredKills) {
  XFCI_REQUIRE_PROCESS_HOST();
  // FaultPlan time triggers map to the parent's watchdog SIGKILLing the
  // child pid from outside while the pool runs.
  pv::FaultPlan plan;
  plan.kill_rank_at_time(0, 0.2);
  auto ddi = pv::make_process_ddi(2, plan, fast_params());

  PoolHarness h(*ddi, 96);
  const auto st = h.run(/*stage_micros=*/20000);  // pool outlives t = 0.2 s
  h.expect_all_items_committed_in_order();
  EXPECT_FALSE(ddi->alive(0));
  EXPECT_TRUE(ddi->alive(1));
  (void)st;  // rank 0 may die between chunks; reassignment is not forced
  ddi.reset();
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessDdi, EntryBarrierDegradesToSurvivorsOnDeadline) {
  XFCI_REQUIRE_PROCESS_HOST();
  // Rank 1 wedges before checking in to the pool (in on_child_start, so
  // it never sets its `entered` flag or ticks a heartbeat).  The entry
  // barrier must fence it at the spawn deadline instead of hanging, and
  // the pool must complete on the survivor.
  auto params = fast_params();
  params.spawn_deadline = 0.3;
  auto ddi = pv::make_process_ddi(2, pv::FaultPlan{}, params);

  const std::size_t nitems = 64;
  pv::TaskPool pool(nitems, 2);
  std::vector<double> staged(nitems, 0.0), out(nitems, 0.0);
  pv::Ddi::PoolHooks hooks;
  hooks.on_child_start = [](std::size_t worker) {
    if (worker == 1)
      for (;;) spin_micros(10000);  // never checks in; fenced by the parent
  };
  hooks.stage = [&](std::size_t it, std::size_t) {
    staged[it] = 2.0 * static_cast<double>(it);
    return true;
  };
  hooks.stage_words = [](std::size_t) { return std::size_t{1}; };
  hooks.pack = [&](std::size_t it, double* dst) {
    dst[0] = staged[it];
    return std::size_t{1};
  };
  hooks.unpack = [&](std::size_t it, const double* src, std::size_t) {
    staged[it] = src[0];
  };
  hooks.commit = [&](std::size_t it) { out[it] = staged[it]; };
  (void)ddi->run_pool(pool, hooks);

  for (std::size_t it = 0; it < nitems; ++it)
    EXPECT_EQ(out[it], 2.0 * static_cast<double>(it)) << "item " << it;
  EXPECT_FALSE(ddi->alive(1));
  EXPECT_TRUE(ddi->alive(0));
  ddi.reset();
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessDdi, TaskDeadlineFencesAWedgedClaimant) {
  XFCI_REQUIRE_PROCESS_HOST();
  // Rank 1 wedges *mid-chunk* (an infinite loop inside stage), with its
  // heartbeat silent.  The claimed-chunk deadline must STONITH-fence the
  // live-but-stuck process (a real SIGKILL) and reassign its chunk.
  auto params = fast_params();
  params.task_deadline = 0.4;
  params.heartbeat_deadline = 0.4;
  auto ddi = pv::make_process_ddi(2, pv::FaultPlan{}, params);

  const std::size_t nitems = 64;
  pv::TaskPool pool(nitems, 2);
  std::vector<double> staged(nitems, 0.0), out(nitems, 0.0);
  pv::Ddi::PoolHooks hooks;
  hooks.stage = [&](std::size_t it, std::size_t worker) {
    if (worker == 1)
      for (;;) spin_micros(1000);  // wedged holding a claim
    // Slow the healthy rank so the wedged one is scheduled and actually
    // claims a chunk (this box may have a single core).
    spin_micros(2000);
    staged[it] = static_cast<double>(it) + 0.5;
    return true;
  };
  hooks.stage_words = [](std::size_t) { return std::size_t{1}; };
  hooks.pack = [&](std::size_t it, double* dst) {
    dst[0] = staged[it];
    return std::size_t{1};
  };
  hooks.unpack = [&](std::size_t it, const double* src, std::size_t) {
    staged[it] = src[0];
  };
  hooks.commit = [&](std::size_t it) { out[it] = staged[it]; };
  const auto st = ddi->run_pool(pool, hooks);

  for (std::size_t it = 0; it < nitems; ++it)
    EXPECT_EQ(out[it], static_cast<double>(it) + 0.5) << "item " << it;
  EXPECT_FALSE(ddi->alive(1));
  EXPECT_GE(st.tasks_reassigned, 1u);
  ddi.reset();
  EXPECT_TRUE(pv::own_segment_names().empty());
}

// ------------------------------------------------- orphan hygiene ---------

#if defined(__linux__)
TEST(ProcessDdi, ReapsStaleSegmentsOfDeadCreators) {
  XFCI_REQUIRE_PROCESS_HOST();
  // Forge the segment a SIGKILL'd run would leak: a segment whose name
  // carries a creator pid that no longer exists.  fork+_exit+waitpid
  // yields a pid guaranteed dead and fully reaped.
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  ASSERT_EQ(::waitpid(dead, nullptr, 0), dead);

  const std::string name = "/xfci-" + std::to_string(dead) + "-0";
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 64), 0);
  ::close(fd);

  EXPECT_GE(pv::reap_stale_segments(), 1u);
  // The forged segment is gone; a live process's segment would survive.
  EXPECT_LT(::shm_open(name.c_str(), O_RDWR, 0600), 0);
}
#endif  // defined(__linux__)

TEST(ProcessDdi, NoSegmentsLeakAfterAFaultedRun) {
  XFCI_REQUIRE_PROCESS_HOST();
  ASSERT_TRUE(pv::own_segment_names().empty());
  {
    pv::FaultPlan plan;
    plan.kill_worker_at_claim(0, 1);
    auto ddi = pv::make_process_ddi(2, plan, fast_params());
    PoolHarness h(*ddi, 64);
    (void)h.run(/*stage_micros=*/500);
    // Two segments exist only while a backend is alive (control arena;
    // the pool arena is already closed after run_pool).
    EXPECT_FALSE(pv::own_segment_names().empty());
  }
  EXPECT_TRUE(pv::own_segment_names().empty());
}

// ------------------------------------------------- FCI conformance --------

TEST(ProcessSigma, BitwiseMatchesSimulateForEveryRankCount) {
  XFCI_REQUIRE_PROCESS_HOST();
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(17);
  const auto c = rng.signed_vector(space.dimension());

  fcp::ParallelOptions opt;
  opt.num_ranks = 3;
  opt.algorithm = xf::Algorithm::kDgemm;
  const auto reference = run_sigma(ctx, opt, c);

  for (std::size_t nranks : {1u, 2u, 3u}) {
    fcp::ParallelOptions popt = opt;
    popt.execution = fcp::ExecutionMode::kProcess;
    popt.num_ranks = nranks;
    popt.process = fast_params();
    const auto sigma = run_sigma(ctx, popt, c);
    // Ordered commit + deterministic per-item layout: the forked build is
    // bitwise identical to the simulated one (same binary, same flags).
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(sigma[i], reference[i])
          << "element " << i << " ranks " << nranks;
  }
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessSolve, ConvergesToSimulatedEnergyThroughRealKills) {
  XFCI_REQUIRE_PROCESS_HOST();
  const auto& tables = be_tables();
  fcp::ParallelOptions opt;
  opt.num_ranks = 3;
  const auto simulated = fcp::run_parallel_fci(tables, 2, 2, 0, opt);
  ASSERT_TRUE(simulated.solve.converged);

  fcp::ParallelOptions popt = opt;
  popt.execution = fcp::ExecutionMode::kProcess;
  popt.process = fast_params();
  // A watchdog SIGKILL early in the solve (guaranteed to fire: the time
  // trigger needs no claim/op race on a single-core box), plus op-count
  // and torn-publish kills and a dropped accumulate as extra chaos on the
  // Be system's short pools; the survivors must still converge to the
  // same energy.
  popt.faults.kill_rank_at_time(2, 0.02)
      .kill_worker_at_claim(1, 3)
      .drop_op(0, 7);
  const auto forked = fcp::run_parallel_fci(tables, 2, 2, 0, popt);

  EXPECT_TRUE(forked.solve.converged);
  EXPECT_NEAR(forked.solve.energy, simulated.solve.energy, 1e-10);
  EXPECT_GE(forked.per_sigma.ranks_lost, 1u);
  EXPECT_GT(forked.total_seconds, 0.0);
  EXPECT_TRUE(pv::own_segment_names().empty());
}

TEST(ProcessSolve, KillThenRestartContinuesTheTrajectory) {
  XFCI_REQUIRE_PROCESS_HOST();
  const auto& tables = be_tables();
  const std::string ck = "test_process_ddi.ck";

  fcp::ParallelOptions popt;
  popt.num_ranks = 2;
  popt.execution = fcp::ExecutionMode::kProcess;
  popt.process = fast_params();

  // Stage a "crash": checkpoint every iteration, stop after 3.
  xf::SolverOptions first;
  first.checkpoint_path = ck;
  first.max_iterations = 3;
  const auto partial = fcp::run_parallel_fci(tables, 2, 2, 0, popt, first);
  ASSERT_FALSE(partial.solve.converged);

  // Restart from the checkpoint — with a real SIGKILL in the resumed run.
  fcp::ParallelOptions rpopt = popt;
  rpopt.faults.kill_worker_at_claim(1, 2);
  xf::SolverOptions second;
  second.restart_path = ck;
  const auto resumed = fcp::run_parallel_fci(tables, 2, 2, 0, rpopt, second);

  fcp::ParallelOptions sopt;
  sopt.num_ranks = 2;
  const auto reference = fcp::run_parallel_fci(tables, 2, 2, 0, sopt);

  EXPECT_TRUE(resumed.solve.converged);
  EXPECT_NEAR(resumed.solve.energy, reference.solve.energy, 1e-10);
  EXPECT_TRUE(pv::own_segment_names().empty());
  std::remove(ck.c_str());
}
