// Tests for reduced density matrices, natural orbitals and dipole moments:
// trace/positivity sum rules, energy reconstruction from the RDMs (an
// independent check on the whole sigma algebra), and dipole physics.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chem/molecule.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci/rdm.hpp"
#include "integrals/basis.hpp"
#include "integrals/one_electron.hpp"
#include "scf/scf.hpp"
#include "systems/standard_systems.hpp"

namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;
namespace xs = xfci::scf;
namespace sys = xfci::systems;

namespace {

// Random symmetric test Hamiltonian (reused pattern from test_sigma).
xi::IntegralTables random_tables(std::size_t norb, std::uint64_t seed) {
  xfci::Rng rng(seed);
  xi::IntegralTables t = xi::IntegralTables::empty(norb);
  for (std::size_t p = 0; p < norb; ++p)
    for (std::size_t q = 0; q <= p; ++q) {
      const double v = rng.uniform(-1, 1);
      t.h(p, q) = v;
      t.h(q, p) = v;
    }
  for (std::size_t p = 0; p < norb; ++p)
    for (std::size_t q = 0; q <= p; ++q)
      for (std::size_t r = 0; r <= p; ++r)
        for (std::size_t s = 0; s <= r; ++s) {
          const std::size_t pq = p * (p + 1) / 2 + q;
          const std::size_t rs = r * (r + 1) / 2 + s;
          if (rs > pq) continue;
          t.eri.set(p, q, r, s, 0.3 * rng.uniform(-1, 1));
        }
  return t;
}

}  // namespace

TEST(OneRdm, TraceEqualsElectronCounts) {
  const auto tables = random_tables(5, 3);
  const xf::CiSpace space(5, 3, 2, tables.group, tables.orbital_irreps, 0);
  const auto res = xf::run_fci(tables, 3, 2, 0);
  const auto rdm = xf::one_rdm(space, res.solve.vector);
  double tr_a = 0.0, tr_b = 0.0;
  for (std::size_t p = 0; p < 5; ++p) {
    tr_a += rdm.alpha(p, p);
    tr_b += rdm.beta(p, p);
  }
  EXPECT_NEAR(tr_a, 3.0, 1e-10);
  EXPECT_NEAR(tr_b, 2.0, 1e-10);
}

TEST(OneRdm, SymmetricAndBounded) {
  const auto tables = random_tables(5, 4);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  const auto res = xf::run_fci(tables, 2, 2, 0);
  const auto gamma = xf::one_rdm(space, res.solve.vector).total();
  EXPECT_TRUE(gamma.is_symmetric(1e-10));
  // Natural occupations in [0, 2].
  const auto nat = xf::natural_orbitals(gamma);
  for (double o : nat.occupations) {
    EXPECT_GE(o, -1e-10);
    EXPECT_LE(o, 2.0 + 1e-10);
  }
  // Descending order and correct sum.
  for (std::size_t i = 1; i < nat.occupations.size(); ++i)
    EXPECT_GE(nat.occupations[i - 1], nat.occupations[i] - 1e-12);
  EXPECT_NEAR(std::accumulate(nat.occupations.begin(),
                              nat.occupations.end(), 0.0),
              4.0, 1e-9);
}

TEST(OneRdm, HartreeFockDeterminantGivesIdempotentRdm) {
  // A single-determinant CI vector: occupations exactly 2/0 (closed shell).
  const auto tables = random_tables(4, 9);
  const xf::CiSpace space(4, 2, 2, tables.group, tables.orbital_irreps, 0);
  std::vector<double> c(space.dimension(), 0.0);
  // The determinant |0011 alpha, 0011 beta> (lowest two orbitals).
  const std::size_t ia = space.alpha().address(0b0011);
  const std::size_t ib = space.beta().address(0b0011);
  c[space.index(0, ia, ib)] = 1.0;
  const auto gamma = xf::one_rdm(space, c).total();
  for (std::size_t p = 0; p < 4; ++p)
    for (std::size_t q = 0; q < 4; ++q) {
      const double expect = (p == q && p < 2) ? 2.0 : 0.0;
      EXPECT_NEAR(gamma(p, q), expect, 1e-12);
    }
}

TEST(TwoRdm, EnergyReconstruction) {
  // E from the RDMs must equal the variational FCI energy: this closes the
  // loop between the sigma algebra, the solver and the density matrices.
  const auto tables = random_tables(5, 7);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  xf::FciOptions opt;
  opt.solver.residual_tolerance = 1e-7;
  opt.solver.max_iterations = 300;
  const auto res = xf::run_fci(tables, 2, 2, 0, opt);
  ASSERT_TRUE(res.solve.converged);
  const auto gamma = xf::one_rdm(space, res.solve.vector).total();
  const auto gamma2 = xf::two_rdm(space, tables, res.solve.vector);
  const double e = xf::energy_from_rdms(tables, gamma, gamma2);
  EXPECT_NEAR(e, res.solve.energy, 1e-8);
}

TEST(TwoRdm, EnergyReconstructionWithSymmetry) {
  // Same check through the C1-expansion path (blocked space).
  const auto mol = xc::Molecule::from_xyz_bohr(
      "O 0.0 0.0 -0.143225816552\n"
      "H 1.638036840407 0.0 1.136548822547\n"
      "H -1.638036840407 0.0 1.136548822547\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto mosys = xs::prepare_mo_system(mol, basis, 1);
  xf::FciOptions opt;
  opt.solver.residual_tolerance = 1e-7;
  opt.solver.max_iterations = 300;
  const auto res = xf::run_fci(mosys.tables, 5, 5, 0, opt);
  ASSERT_TRUE(res.solve.converged);
  const xf::CiSpace space(mosys.tables.norb, 5, 5, mosys.tables.group,
                          mosys.tables.orbital_irreps, 0);
  const auto gamma = xf::one_rdm(space, res.solve.vector).total();
  const auto gamma2 = xf::two_rdm(space, mosys.tables, res.solve.vector);
  EXPECT_NEAR(xf::energy_from_rdms(mosys.tables, gamma, gamma2),
              res.solve.energy, 1e-7);
  // Partial trace sum rule: sum_r Gamma_pqrr = (N-1) gamma_pq.
  const double n_elec = 10.0;
  for (std::size_t p = 0; p < mosys.tables.norb; ++p) {
    double tr = 0.0;
    for (std::size_t r = 0; r < mosys.tables.norb; ++r)
      tr += gamma2(p, p, r, r);
    EXPECT_NEAR(tr, (n_elec - 1.0) * gamma(p, p), 1e-7) << "p=" << p;
  }
}

TEST(DipoleIntegrals, SingleGaussianCentroid) {
  // <g|x|g> for a normalized s Gaussian centered at (x0,y0,z0) equals the
  // center coordinates.
  xi::Shell sh;
  sh.l = 0;
  sh.atom = 0;
  sh.center = {0.3, -0.7, 1.1};
  sh.primitives.push_back(xi::Primitive{0.9, 1.0});
  const auto basis = xi::BasisSet::from_shells({sh});
  const auto d = xi::dipole_matrices(basis);
  EXPECT_NEAR(d[0](0, 0), 0.3, 1e-12);
  EXPECT_NEAR(d[1](0, 0), -0.7, 1e-12);
  EXPECT_NEAR(d[2](0, 0), 1.1, 1e-12);
}

TEST(DipoleIntegrals, OriginShiftIsRigorous) {
  // D(origin + a) = D(origin) - a * S exactly.
  const auto mol = xc::Molecule::from_xyz_bohr("O 0 0 0\nH 0 0 1.8\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto d0 = xi::dipole_matrices(basis, {0, 0, 0});
  const auto d1 = xi::dipole_matrices(basis, {0.5, -1.0, 2.0});
  const auto s = xi::overlap_matrix(basis);
  const double shift[3] = {0.5, -1.0, 2.0};
  for (int dim = 0; dim < 3; ++dim)
    for (std::size_t i = 0; i < s.rows(); ++i)
      for (std::size_t j = 0; j < s.cols(); ++j)
        EXPECT_NEAR(d1[dim](i, j), d0[dim](i, j) - shift[dim] * s(i, j),
                    1e-11);
}

TEST(Dipole, HomonuclearDiatomicIsZero) {
  const auto sysH2 = sys::h2(1.4);
  const auto mol = xc::Molecule::from_xyz_bohr("H 0 0 -0.7\nH 0 0 0.7\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto moco = xs::prepare_mo_system(mol, basis, 1);
  const auto res = xf::run_fci(moco.tables, 1, 1, 0);
  const xf::CiSpace space(moco.tables.norb, 1, 1, moco.tables.group,
                          moco.tables.orbital_irreps, 0);
  const auto gamma = xf::one_rdm(space, res.solve.vector).total();
  const auto dm = xs::mo_dipole_matrices(basis, moco.scf.coefficients);
  const auto mu = xf::dipole_moment(gamma, dm, xi::nuclear_dipole(mol));
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(mu[d], 0.0, 1e-9);
}

TEST(Dipole, WaterMagnitudeIsPhysical) {
  // FCI/STO-3G water dipole is about 0.6-0.7 a.u. (1.6-1.8 D), along the
  // C2 axis (z with our geometry).
  const auto mol = xc::Molecule::from_xyz_bohr(
      "O 0.0 0.0 -0.143225816552\n"
      "H 1.638036840407 0.0 1.136548822547\n"
      "H -1.638036840407 0.0 1.136548822547\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto moco = xs::prepare_mo_system(mol, basis, 1);
  const auto res = xf::run_fci(moco.tables, 5, 5, 0);
  const xf::CiSpace space(moco.tables.norb, 5, 5, moco.tables.group,
                          moco.tables.orbital_irreps, 0);
  const auto gamma = xf::one_rdm(space, res.solve.vector).total();
  const auto dm = xs::mo_dipole_matrices(basis, moco.scf.coefficients);
  const auto mu = xf::dipole_moment(gamma, dm, xi::nuclear_dipole(mol));
  EXPECT_NEAR(mu[0], 0.0, 1e-8);  // perpendicular components vanish by C2v
  EXPECT_NEAR(mu[1], 0.0, 1e-8);
  const double mag = std::abs(mu[2]);
  EXPECT_GT(mag, 0.5);
  EXPECT_LT(mag, 0.8);
}

TEST(Dipole, NeutralMoleculeOriginIndependent) {
  const auto mol = xc::Molecule::from_xyz_bohr(
      "O 0.0 0.0 -0.143225816552\n"
      "H 1.638036840407 0.0 1.136548822547\n"
      "H -1.638036840407 0.0 1.136548822547\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto moco = xs::prepare_mo_system(mol, basis, 1);
  const auto res = xf::run_fci(moco.tables, 5, 5, 0);
  const xf::CiSpace space(moco.tables.norb, 5, 5, moco.tables.group,
                          moco.tables.orbital_irreps, 0);
  const auto gamma = xf::one_rdm(space, res.solve.vector).total();

  const std::array<double, 3> shifted = {1.0, 2.0, -3.0};
  const auto dm0 = xs::mo_dipole_matrices(basis, moco.scf.coefficients);
  const auto dm1 =
      xs::mo_dipole_matrices(basis, moco.scf.coefficients, shifted);
  const auto mu0 = xf::dipole_moment(gamma, dm0, xi::nuclear_dipole(mol));
  const auto mu1 =
      xf::dipole_moment(gamma, dm1, xi::nuclear_dipole(mol, shifted));
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(mu0[d], mu1[d], 1e-8);
}
