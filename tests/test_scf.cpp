// Tests for the SCF module: literature reference energies, variational and
// consistency invariants, ROHF open shells, DIIS, the MO transformation and
// orbital symmetry labelling.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "chem/molecule.hpp"
#include "common/error.hpp"
#include "integrals/basis.hpp"
#include "integrals/one_electron.hpp"
#include "integrals/tables.hpp"
#include "integrals/two_electron.hpp"
#include "scf/scf.hpp"

namespace xs = xfci::scf;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;
using xfci::linalg::Matrix;

namespace {

xc::Molecule h2(double r = 1.4) {
  return xc::Molecule::from_xyz_bohr("H 0 0 0\nH 0 0 " + std::to_string(r) +
                                     "\n");
}

// Standard near-equilibrium water geometry (bohr), C2v along z.
xc::Molecule water() {
  return xc::Molecule::from_xyz_bohr(
      "O 0.0 0.0 -0.143225816552\n"
      "H 1.638036840407 0.0 1.136548822547\n"
      "H -1.638036840407 0.0 1.136548822547\n");
}

}  // namespace

TEST(Rhf, H2Sto3gReferenceEnergy) {
  // Szabo-Ostlund: E(RHF, H2/STO-3G, R=1.4) = -1.1167 Eh.
  const auto res = xs::rhf(h2(), xi::BasisSet::build("sto-3g", h2()));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.energy, -1.1167, 2e-4);
}

TEST(Rhf, HeliumSto3gReferenceEnergy) {
  // E(RHF, He/STO-3G) = -2.8077839575 Eh (standard value).
  const auto mol = xc::Molecule::from_xyz_bohr("He 0 0 0\n");
  const auto res = xs::rhf(mol, xi::BasisSet::build("sto-3g", mol));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.energy, -2.807784, 1e-5);
}

TEST(Rhf, WaterSto3gReferenceEnergy) {
  // E(RHF, H2O/STO-3G) ~ -74.9420 Eh at this standard geometry.
  const auto mol = water();
  const auto res = xs::rhf(mol, xi::BasisSet::build("sto-3g", mol));
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.energy, -74.9420799, 2e-4);
}

TEST(Rhf, EnergyIsVariationalInBasis) {
  // Bigger basis must lower (or equal) the RHF energy.
  const auto mol = h2();
  const double e_min =
      xs::rhf(mol, xi::BasisSet::build("sto-3g", mol)).energy;
  const double e_dz = xs::rhf(mol, xi::BasisSet::build("x-dz", mol)).energy;
  const double e_dzp =
      xs::rhf(mol, xi::BasisSet::build("x-dzp", mol)).energy;
  EXPECT_LT(e_dz, e_min + 1e-10);
  EXPECT_LT(e_dzp, e_dz + 1e-10);
}

TEST(Rhf, OrbitalsAreOrthonormal) {
  const auto mol = water();
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto res = xs::rhf(mol, basis);
  const auto s = xi::overlap_matrix(basis);
  const Matrix ctsc =
      res.coefficients.transposed() * (s * res.coefficients);
  EXPECT_LT(ctsc.max_abs_diff(Matrix::identity(ctsc.rows())), 1e-9);
}

TEST(Rhf, OrbitalEnergiesAscending) {
  const auto mol = water();
  const auto res = xs::rhf(mol, xi::BasisSet::build("sto-3g", mol));
  for (std::size_t i = 1; i < res.orbital_energies.size(); ++i)
    EXPECT_LE(res.orbital_energies[i - 1],
              res.orbital_energies[i] + 1e-12);
}

TEST(Rhf, OddElectronCountThrows) {
  const auto mol = xc::Molecule::from_xyz_bohr("H 0 0 0\n");
  EXPECT_THROW(xs::rhf(mol, xi::BasisSet::build("sto-3g", mol)),
               xfci::Error);
}

TEST(Rohf, OxygenTripletBelowSinglet) {
  // O atom ground state is 3P; the ROHF triplet must beat the closed-shell
  // singlet determinant.
  const auto mol = xc::Molecule::from_xyz_bohr("O 0 0 0\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto triplet = xs::rohf(mol, basis, 3);
  const auto singlet = xs::rohf(mol, basis, 1);
  EXPECT_TRUE(triplet.converged);
  EXPECT_TRUE(singlet.converged);
  EXPECT_LT(triplet.energy, singlet.energy);
  EXPECT_EQ(triplet.num_alpha, 5u);
  EXPECT_EQ(triplet.num_beta, 3u);
  // Literature ROHF O/STO-3G triplet: about -73.804 Eh.
  EXPECT_NEAR(triplet.energy, -73.804, 5e-3);
}

TEST(Rohf, MultiplicityValidation) {
  const auto mol = xc::Molecule::from_xyz_bohr("O 0 0 0\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  // 8 electrons with multiplicity 2 (one open shell) is impossible.
  EXPECT_THROW(xs::rohf(mol, basis, 2), xfci::Error);
  EXPECT_THROW(xs::rohf(mol, basis, 0), xfci::Error);
}

TEST(FockBuilders, CoulombExchangeAgreeWithDirectSum) {
  const auto mol = h2();
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto eri = xi::compute_eri(basis);
  Matrix d(2, 2);
  d(0, 0) = 0.3;
  d(0, 1) = d(1, 0) = -0.2;
  d(1, 1) = 0.9;
  const auto j = xs::coulomb_matrix(eri, d);
  const auto k = xs::exchange_matrix(eri, d);
  for (std::size_t p = 0; p < 2; ++p)
    for (std::size_t q = 0; q < 2; ++q) {
      double jv = 0.0, kv = 0.0;
      for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t s = 0; s < 2; ++s) {
          jv += d(r, s) * eri(p, q, r, s);
          kv += d(r, s) * eri(p, r, q, s);
        }
      EXPECT_NEAR(j(p, q), jv, 1e-14);
      EXPECT_NEAR(k(p, q), kv, 1e-14);
    }
}

TEST(MoTransform, HydrogenMoleculeDiagonalFock) {
  // In the MO basis the one-electron + mean-field part reproduces the
  // orbital energies: eps_i = h_ii + sum_j [2 (ii|jj) - (ij|ji)] over
  // occupied j.
  const auto mol = h2();
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto res = xs::rhf(mol, basis);
  const auto h_ao = xi::core_hamiltonian(basis, mol);
  const auto eri_ao = xi::compute_eri(basis);
  const auto t = xi::transform_to_mo(h_ao, eri_ao, res.coefficients);
  for (std::size_t i = 0; i < 2; ++i) {
    const double eps =
        t.h(i, i) + 2.0 * t.eri(i, i, 0, 0) - t.eri(i, 0, 0, i);
    EXPECT_NEAR(eps, res.orbital_energies[i], 1e-7);
  }
}

TEST(MoTransform, ScfEnergyFromMoIntegrals) {
  // E = 2 sum_i h_ii + sum_ij [2 (ii|jj) - (ij|ji)] + E_nuc for RHF.
  const auto mol = water();
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto res = xs::rhf(mol, basis);
  const auto t = xi::transform_to_mo(xi::core_hamiltonian(basis, mol),
                                     xi::compute_eri(basis),
                                     res.coefficients);
  const std::size_t nocc = res.num_alpha;
  double e = mol.nuclear_repulsion();
  for (std::size_t i = 0; i < nocc; ++i) {
    e += 2.0 * t.h(i, i);
    for (std::size_t j = 0; j < nocc; ++j)
      e += 2.0 * t.eri(i, i, j, j) - t.eri(i, j, j, i);
  }
  EXPECT_NEAR(e, res.energy, 1e-8);
}

TEST(FreezeCore, PreservesValenceEnergyExpression) {
  // Freezing core then computing the remaining RHF-like energy expression
  // over active occupied orbitals reproduces the total SCF energy.
  const auto mol = water();
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto res = xs::rhf(mol, basis);
  auto t = xi::transform_to_mo(xi::core_hamiltonian(basis, mol),
                               xi::compute_eri(basis), res.coefficients);
  t.core_energy = mol.nuclear_repulsion();
  const auto f = xi::freeze_core(t, 1);  // freeze O 1s
  const std::size_t nocc = res.num_alpha - 1;
  double e = f.core_energy;
  for (std::size_t i = 0; i < nocc; ++i) {
    e += 2.0 * f.h(i, i);
    for (std::size_t j = 0; j < nocc; ++j)
      e += 2.0 * f.eri(i, i, j, j) - f.eri(i, j, j, i);
  }
  EXPECT_NEAR(e, res.energy, 1e-8);
}

TEST(PrepareMoSystem, WaterOrbitalIrrepsAreC2v) {
  const auto mol = water();
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto sys = xs::prepare_mo_system(mol, basis, 1);
  EXPECT_EQ(sys.tables.group.name(), "C2v");
  ASSERT_EQ(sys.tables.orbital_irreps.size(), basis.num_ao());
  // Known STO-3G water MO symmetry sequence: 1a1 2a1 1b1 3a1 1b2 (occ)
  // then 4a1 2b1 (virtual) -- with our axis convention (molecule in the xz
  // plane) the "b1" orbitals transform as x.  Count occurrences instead of
  // fixing phases: 4 a1, 2 of one b, 1 of the other.
  std::array<int, 4> counts = {0, 0, 0, 0};
  for (auto h : sys.tables.orbital_irreps) counts[h]++;
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts[3], 4);  // a1
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[0], 0);  // no a2 in STO-3G water
}

TEST(PrepareMoSystem, TotallySymmetricIsMostCommonForAtom) {
  const auto mol = xc::Molecule::from_xyz_bohr("O 0 0 0\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto sys = xs::prepare_mo_system(mol, basis, 3);
  EXPECT_EQ(sys.tables.group.name(), "D2h");
  // 1s, 2s -> Ag; 2p -> B1u/B2u/B3u.
  int n_ag = 0;
  for (auto h : sys.tables.orbital_irreps)
    if (sys.tables.group.irrep_name(h) == "Ag") ++n_ag;
  EXPECT_EQ(n_ag, 2);
}
