// Tests for the excitation-truncated CI module: the CI hierarchy
// CIS <= CISD <= CISDT <= ... <= FCI, agreement with run_fci at the FCI
// level, Brillouin's theorem, and the sparse Hamiltonian itself.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci/selected_ci.hpp"
#include "integrals/basis.hpp"
#include "scf/scf.hpp"
#include "systems/model_systems.hpp"
#include "systems/standard_systems.hpp"

namespace xf = xfci::fci;
namespace xs = xfci::systems;

TEST(ExcitationLevel, CountsHoles) {
  const xf::Determinant ref{0b0011, 0b0011};
  EXPECT_EQ(xf::excitation_level(ref, ref), 0u);
  EXPECT_EQ(xf::excitation_level(ref, {0b0101, 0b0011}), 1u);
  EXPECT_EQ(xf::excitation_level(ref, {0b0101, 0b0110}), 2u);
  EXPECT_EQ(xf::excitation_level(ref, {0b1100, 0b1100}), 4u);
}

TEST(TruncatedSpace, SizesFollowTheHierarchy) {
  const auto sys = xs::water({});
  std::size_t prev = 0;
  for (std::size_t level = 0; level <= 10; ++level) {
    const auto dets =
        xf::truncated_space(sys.tables, 5, 5, 0, level);
    EXPECT_GE(dets.size(), prev);
    prev = dets.size();
  }
  // Level 10 = FCI: matches the blocked space dimension.
  const xf::CiSpace space(sys.tables.norb, 5, 5, sys.tables.group,
                          sys.tables.orbital_irreps, 0);
  EXPECT_EQ(prev, space.dimension());
  // Level 0 in the totally symmetric sector: just the reference.
  EXPECT_EQ(xf::truncated_space(sys.tables, 5, 5, 0, 0).size(), 1u);
}

TEST(SparseHamiltonian, MatchesDenseApplication) {
  const auto tables = xs::hubbard_chain(5, 1.0, 2.5);
  const auto dets = xf::truncated_space(tables, 2, 2, 0, 4);  // full space
  const xf::SparseHamiltonian h(tables, dets);
  ASSERT_EQ(h.dimension(), dets.size());

  xfci::Rng rng(3);
  const auto x = rng.signed_vector(dets.size());
  std::vector<double> y(dets.size());
  h.apply(x, y);
  for (std::size_t i = 0; i < dets.size(); ++i) {
    double ref = 0.0;
    for (std::size_t j = 0; j < dets.size(); ++j)
      ref += xf::hamiltonian_element(tables, dets[i], dets[j]) * x[j];
    EXPECT_NEAR(y[i], ref, 1e-11) << i;
  }
}

TEST(TruncatedCi, VariationalHierarchyOnWater) {
  const auto sys = xs::water({});
  const double e_fci = xf::run_fci(sys.tables, 5, 5, 0).solve.energy;

  double prev = 1e9;
  for (std::size_t level : {1u, 2u, 3u, 4u}) {
    const auto res = xf::run_truncated_ci(sys.tables, 5, 5, 0, level);
    ASSERT_TRUE(res.converged) << "level " << level;
    EXPECT_LE(res.energy, prev + 1e-10) << "level " << level;
    EXPECT_GE(res.energy, e_fci - 1e-9) << "level " << level;
    prev = res.energy;
  }
  // CISD already recovers most of the water correlation energy.
  const auto cisd = xf::run_truncated_ci(sys.tables, 5, 5, 0, 2);
  EXPECT_LT(cisd.energy, sys.scf_energy - 0.9 * (sys.scf_energy - e_fci) +
                             0.05 * std::abs(sys.scf_energy - e_fci));
}

TEST(TruncatedCi, FullLevelReproducesFci) {
  const auto tables = xs::hubbard_chain(6, 1.0, 4.0);
  const double e_fci = xf::run_fci(tables, 3, 3, 0).solve.energy;
  const auto res = xf::run_truncated_ci(tables, 3, 3, 0, 6, 1e-7, 400);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.energy, e_fci, 1e-7);
}

TEST(TruncatedCi, BrillouinTheorem) {
  // With canonical HF orbitals, singles do not couple to the reference:
  // E(CIS) == E(HF) for the ground state.
  const auto sys = xs::water({});
  const auto cis = xf::run_truncated_ci(sys.tables, 5, 5, 0, 1, 1e-8);
  ASSERT_TRUE(cis.converged);
  EXPECT_NEAR(cis.energy, sys.scf_energy, 1e-6);
}

TEST(TruncatedCi, SizeConsistencyFailureOfCisd) {
  // The textbook calibration lesson: CISD of two non-interacting H2
  // molecules is NOT twice CISD of one (FCI is).  For 2 electrons CISD is
  // FCI, so compare at the dimer level where quadruples are missing.
  xs::SpaceOptions o;
  o.basis = "sto-3g";
  const auto one = xs::h2(1.4, o);
  const double e1_fci = xf::run_fci(one.tables, 1, 1, 0).solve.energy;

  // Two H2 molecules 60 bohr apart (C1 to keep one sector).
  const auto mol = xfci::chem::Molecule::from_xyz_bohr(
      "H 0 0 -0.7\nH 0 0 0.7\nH 0.3 0 59.3\nH 0.3 0 60.7\n");
  const auto basis = xfci::integrals::BasisSet::build("sto-3g", mol);
  const auto pair = xfci::scf::prepare_mo_system(mol, basis, 1);

  const double e2_fci = xf::run_fci(pair.tables, 2, 2, 0).solve.energy;
  EXPECT_NEAR(e2_fci, 2.0 * e1_fci, 1e-5);  // FCI is size-consistent

  const auto cisd = xf::run_truncated_ci(pair.tables, 2, 2, 0, 2, 1e-7);
  ASSERT_TRUE(cisd.converged);
  // CISD misses the simultaneous double excitation on both monomers.
  EXPECT_GT(cisd.energy, e2_fci + 1e-4);
}
