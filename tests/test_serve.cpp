// Tests for the serve layer (DESIGN.md §15): the shared SolveSetup /
// SolveSession split must be bitwise-equivalent to one-shot run_fci calls
// — including under concurrency — and the Engine's cache, priority
// scheduling, admission control and cancellation must behave as
// documented.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci/solve_session.hpp"
#include "fci_parallel/parallel_fci.hpp"
#include "integrals/fcidump.hpp"
#include "serve/engine.hpp"
#include "serve/setup_cache.hpp"

namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xp = xfci::fcp;
namespace xv = xfci::serve;

namespace {

// Same diagonally-dominant model Hamiltonian shape the solver tests use.
xi::IntegralTables model_tables(std::size_t norb, std::uint64_t seed) {
  xfci::Rng rng(seed);
  xi::IntegralTables t = xi::IntegralTables::empty(norb);
  for (std::size_t p = 0; p < norb; ++p) {
    t.h(p, p) = -2.0 + 0.7 * static_cast<double>(p);
    for (std::size_t q = 0; q < p; ++q) {
      const double v = 0.05 * rng.uniform(-1, 1);
      t.h(p, q) = v;
      t.h(q, p) = v;
    }
  }
  for (std::size_t p = 0; p < norb; ++p)
    for (std::size_t q = 0; q <= p; ++q)
      for (std::size_t r = 0; r <= p; ++r)
        for (std::size_t s = 0; s <= r; ++s) {
          const std::size_t pq = p * (p + 1) / 2 + q;
          const std::size_t rs = r * (r + 1) / 2 + s;
          if (rs > pq) continue;
          const double scale = (p == q && r == s) ? 0.3 : 0.05;
          t.eri.set(p, q, r, s, scale * rng.uniform(0, 1));
        }
  t.core_energy = 1.25;
  return t;
}

std::string write_dump(const std::string& name, std::uint64_t seed,
                       std::size_t norb = 5) {
  const std::string path = "/tmp/xfci_test_serve_" + name + ".fcidump";
  xi::write_fcidump(path, model_tables(norb, seed), 2, 2);
  return path;
}

}  // namespace

// --------------------------------------------------------------- cache --

TEST(SetupCache, HitsMissesAndSharing) {
  const auto tables = model_tables(6, 1);
  xv::SetupCache cache(4);
  xv::SetupKey key;
  key.source_hash = 7;
  key.nalpha = key.nbeta = 2;
  key.irrep = 0;
  const auto build = [&] {
    return xf::SolveSetup::create(tables, 2, 2, 0);
  };
  bool hit = true;
  const auto a = cache.get_or_build(key, build, &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.get_or_build(key, build, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());  // the same shared setup, not a copy

  xv::SetupKey other = key;
  other.algorithm = xf::Algorithm::kMoc;
  cache.get_or_build(other, build, &hit);
  EXPECT_FALSE(hit);  // algorithm is part of the identity

  const xv::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.resident_entries, 2u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST(SetupCache, ByteBudgetEvictsLru) {
  const auto tables = model_tables(6, 1);
  const auto build = [&] {
    return xf::SolveSetup::create(tables, 2, 2, 0);
  };
  // One shard, a budget far below one setup: each insert evicts the
  // previous entry but always keeps the newest.
  xv::SetupCache cache(1, 1);
  for (std::uint64_t i = 0; i < 3; ++i) {
    xv::SetupKey key;
    key.source_hash = i;
    cache.get_or_build(key, build);
  }
  const xv::CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.resident_entries, 1u);
}

TEST(SetupCache, HashBytesIsStable) {
  EXPECT_EQ(xv::hash_bytes("abc"), xv::hash_bytes("abc"));
  EXPECT_NE(xv::hash_bytes("abc"), xv::hash_bytes("abd"));
  EXPECT_NE(xv::hash_bytes("abc"), xv::hash_bytes("abc", 123));
}

// ----------------------------------------------- setup/session identity --

TEST(SolveSession, MatchesRunFciBitwise) {
  const auto tables = model_tables(6, 42);
  for (const auto algorithm :
       {xf::Algorithm::kDgemm, xf::Algorithm::kMoc, xf::Algorithm::kDense}) {
    xf::FciOptions opt;
    opt.algorithm = algorithm;
    const auto ref = xf::run_fci(tables, 2, 2, 0, opt);

    const auto setup = xf::SolveSetup::create(
        tables, 2, 2, 0, xf::SetupOptions{algorithm, false});
    xf::SolveSession session(setup);
    const auto res = session.solve();
    EXPECT_EQ(res.solve.energy, ref.solve.energy);
    EXPECT_EQ(res.solve.vector, ref.solve.vector);
    EXPECT_EQ(res.solve.iterations, ref.solve.iterations);
    EXPECT_EQ(res.s_squared, ref.s_squared);
  }
}

TEST(SolveSession, Ms0TransposeMatchesRunFciBitwise) {
  const auto tables = model_tables(6, 7);
  xf::FciOptions opt;
  opt.ms0_transpose = true;
  const auto ref = xf::run_fci(tables, 2, 2, 0, opt);

  const auto setup = xf::SolveSetup::create(
      tables, 2, 2, 0, xf::SetupOptions{xf::Algorithm::kDgemm, true});
  xf::SolveSession session(setup);
  const auto res = session.solve();
  EXPECT_EQ(res.solve.energy, ref.solve.energy);
  EXPECT_EQ(res.solve.vector, ref.solve.vector);
}

TEST(SolveSession, ConcurrentSessionsOnOneSetupAreBitwiseIdentical) {
  const auto tables = model_tables(6, 42);
  const auto ref1 = xf::run_fci(tables, 2, 2, 0);
  const auto ref2 = xf::run_fci(tables, 2, 2, 0);
  ASSERT_EQ(ref1.solve.energy, ref2.solve.energy);  // baseline determinism

  const auto setup = xf::SolveSetup::create(tables, 2, 2, 0);
  xf::FciResult a, b;
  std::thread ta([&] {
    xf::SolveSession s(setup);
    a = s.solve();
  });
  std::thread tb([&] {
    xf::SolveSession s(setup);
    b = s.solve();
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.solve.energy, ref1.solve.energy);
  EXPECT_EQ(b.solve.energy, ref1.solve.energy);
  EXPECT_EQ(a.solve.vector, ref1.solve.vector);
  EXPECT_EQ(b.solve.vector, ref1.solve.vector);
}

// Stress shape for ThreadSanitizer runs: many sessions hammer one shared
// setup (and its memoized preconditioner) at once.
TEST(SolveSession, ManyConcurrentSessionsStress) {
  const auto tables = model_tables(6, 9);
  const auto ref = xf::run_fci(tables, 2, 2, 0);
  const auto setup = xf::SolveSetup::create(tables, 2, 2, 0);
  constexpr std::size_t kThreads = 8;
  std::vector<xf::FciResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      xf::SolveSession s(setup);
      results[i] = s.solve();
    });
  for (auto& t : threads) t.join();
  for (const auto& r : results) {
    EXPECT_EQ(r.solve.energy, ref.solve.energy);
    EXPECT_EQ(r.solve.vector, ref.solve.vector);
  }
}

TEST(SolveSession, CancelStopsTheSolve) {
  const auto tables = model_tables(6, 3);
  const auto setup = xf::SolveSetup::create(tables, 2, 2, 0);
  xf::SolveSession session(setup);
  session.request_cancel();
  const auto res = session.solve();
  EXPECT_TRUE(res.solve.cancelled);
  EXPECT_FALSE(res.solve.converged);
  session.reset_cancel();
  const auto full = session.solve();
  EXPECT_FALSE(full.solve.cancelled);
  EXPECT_TRUE(full.solve.converged);
}

TEST(SolveSession, CallerShouldStopHookIsMerged) {
  const auto tables = model_tables(6, 3);
  const auto setup = xf::SolveSetup::create(tables, 2, 2, 0);
  xf::SolveSession session(setup);
  xf::SolverOptions opt;
  opt.should_stop = [] { return true; };
  const auto res = session.solve(opt);
  EXPECT_TRUE(res.solve.cancelled);
}

// ------------------------------------------- parallel setup-based entry --

TEST(ParallelFci, SetupOverloadIsBitwiseIdentical) {
  const auto tables = model_tables(6, 42);
  xp::ParallelOptions popt;
  popt.num_ranks = 4;
  const auto ref = xp::run_parallel_fci(tables, 2, 2, 0, popt);

  const auto setup = xf::SolveSetup::create(tables, 2, 2, 0);
  const auto res = xp::run_parallel_fci(setup, popt);
  EXPECT_EQ(res.solve.energy, ref.solve.energy);
  EXPECT_EQ(res.solve.vector, ref.solve.vector);
}

TEST(ParallelFci, SetupOverloadThreadsBackendBitwiseIdentical) {
  const auto tables = model_tables(6, 42);
  xp::ParallelOptions popt;
  popt.num_ranks = 2;
  popt.execution = xp::ExecutionMode::kThreads;
  popt.num_threads = 2;
  const auto ref = xp::run_parallel_fci(tables, 2, 2, 0, popt);

  const auto setup = xf::SolveSetup::create(tables, 2, 2, 0);
  const auto res = xp::run_parallel_fci(setup, popt);
  EXPECT_EQ(res.solve.energy, ref.solve.energy);
  EXPECT_EQ(res.solve.vector, ref.solve.vector);
}

TEST(ParallelFci, SetupOverloadRejectsMismatchedOptions) {
  const auto tables = model_tables(6, 1);
  const auto setup = xf::SolveSetup::create(
      tables, 2, 2, 0, xf::SetupOptions{xf::Algorithm::kMoc, false});
  xp::ParallelOptions popt;
  popt.num_ranks = 2;  // defaults to dgemm: mismatch
  EXPECT_THROW(xp::run_parallel_fci(setup, popt), xfci::Error);
}

// -------------------------------------------------------------- engine --

TEST(Engine, FileJobsMatchRunFciAndShareSetups) {
  const std::string path_a = write_dump("engine_a", 11);
  const std::string path_b = write_dump("engine_b", 12);

  xv::EngineOptions eopt;
  eopt.num_workers = 2;
  xv::Engine engine(eopt);
  for (const auto& path : {path_a, path_b, path_a, path_b}) {
    xv::JobSpec spec;
    spec.fcidump_path = path;
    engine.submit(std::move(spec));
  }
  engine.drain();

  const auto data_a = xi::read_fcidump(path_a);
  const auto ref_a =
      xf::run_fci(data_a.tables, data_a.nalpha, data_a.nbeta, data_a.isym);
  const auto results = engine.results();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.state, xv::JobState::kDone) << r.error;
    EXPECT_TRUE(r.converged);
  }
  // Jobs 0 and 2 solved path_a: both bitwise-equal to the one-shot path.
  EXPECT_EQ(results[0].energy, ref_a.solve.energy);
  EXPECT_EQ(results[2].energy, ref_a.solve.energy);
  // Duplicate submissions hit the cache (2 distinct systems, 4 jobs).
  EXPECT_EQ(engine.cache_stats().misses, 2u);
  EXPECT_EQ(engine.cache_stats().hits, 2u);
}

TEST(Engine, CacheStatsAndBitwiseEnergies) {
  const std::string path = write_dump("engine_c", 21);
  const auto data = xi::read_fcidump(path);
  const auto ref =
      xf::run_fci(data.tables, data.nalpha, data.nbeta, data.isym);

  xv::EngineOptions eopt;
  eopt.num_workers = 2;
  xv::Engine engine(eopt);
  for (int i = 0; i < 3; ++i) {
    xv::JobSpec spec;
    spec.fcidump_path = path;
    engine.submit(std::move(spec));
  }
  engine.drain();

  const xv::CacheStats cs = engine.cache_stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 2u);
  std::size_t hits = 0;
  for (const auto& r : engine.results()) {
    ASSERT_EQ(r.state, xv::JobState::kDone) << r.error;
    EXPECT_EQ(r.energy, ref.solve.energy);  // bitwise, any scheduling
    EXPECT_EQ(r.dimension, ref.dimension);
    if (r.cache_hit) ++hits;
  }
  EXPECT_EQ(hits, 2u);
}

TEST(Engine, InMemoryTablesJobsShareSetups) {
  const auto tables =
      std::make_shared<const xi::IntegralTables>(model_tables(6, 31));
  const auto ref = xf::run_fci(*tables, 2, 2, 0);

  xv::Engine engine;
  for (int i = 0; i < 2; ++i) {
    xv::JobSpec spec;
    spec.name = "mem" + std::to_string(i);
    spec.tables = tables;
    spec.nalpha = spec.nbeta = 2;
    engine.submit(std::move(spec));
  }
  engine.drain();
  const auto results = engine.results();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_EQ(r.state, xv::JobState::kDone) << r.error;
    EXPECT_EQ(r.energy, ref.solve.energy);
  }
  EXPECT_EQ(engine.cache_stats().hits, 1u);
}

TEST(Engine, InteractiveJobsRunBeforeBatch) {
  const std::string path = write_dump("engine_p", 41);
  xv::EngineOptions eopt;
  eopt.num_workers = 1;  // serial pops make the order observable
  xv::Engine engine(eopt);

  xv::JobSpec batch;
  batch.name = "batch";
  batch.fcidump_path = path;
  batch.priority = xv::Priority::kBatch;
  const std::size_t batch_id = engine.submit(std::move(batch));

  xv::JobSpec inter;
  inter.name = "interactive";
  inter.fcidump_path = path;
  inter.priority = xv::Priority::kInteractive;
  const std::size_t inter_id = engine.submit(std::move(inter));

  engine.drain();
  const auto ri = engine.result(inter_id);
  const auto rb = engine.result(batch_id);
  ASSERT_EQ(ri.state, xv::JobState::kDone) << ri.error;
  ASSERT_EQ(rb.state, xv::JobState::kDone) << rb.error;
  EXPECT_LT(ri.sequence, rb.sequence);  // submitted later, started first
}

TEST(Engine, AdmissionControlRejectsBeyondCap) {
  const std::string path = write_dump("engine_r", 51);
  xv::EngineOptions eopt;
  eopt.max_pending = 1;
  xv::Engine engine(eopt);

  xv::JobSpec a;
  a.fcidump_path = path;
  const std::size_t id_a = engine.submit(std::move(a));
  xv::JobSpec b;
  b.fcidump_path = path;
  const std::size_t id_b = engine.submit(std::move(b));

  EXPECT_EQ(engine.result(id_b).state, xv::JobState::kRejected);
  engine.drain();
  EXPECT_EQ(engine.result(id_a).state, xv::JobState::kDone);
  EXPECT_EQ(engine.result(id_b).state, xv::JobState::kRejected);

  // The cap frees as jobs drain: a post-drain submit is admitted.
  xv::JobSpec c;
  c.fcidump_path = path;
  const std::size_t id_c = engine.submit(std::move(c));
  engine.drain();
  EXPECT_EQ(engine.result(id_c).state, xv::JobState::kDone);
}

TEST(Engine, FailedJobIsReportedNotFatal) {
  const std::string good = write_dump("engine_f", 61);
  xv::Engine engine;
  xv::JobSpec bad;
  bad.name = "missing";
  bad.fcidump_path = "/tmp/xfci_test_serve_does_not_exist.fcidump";
  const std::size_t bad_id = engine.submit(std::move(bad));
  xv::JobSpec ok;
  ok.fcidump_path = good;
  const std::size_t ok_id = engine.submit(std::move(ok));
  engine.drain();

  const auto rb = engine.result(bad_id);
  EXPECT_EQ(rb.state, xv::JobState::kFailed);
  EXPECT_FALSE(rb.error.empty());
  EXPECT_EQ(engine.result(ok_id).state, xv::JobState::kDone);
}

TEST(Engine, ReportIsValidMetricsDocument) {
  const std::string path = write_dump("engine_m", 71);
  xv::Engine engine;
  xv::JobSpec spec;
  spec.fcidump_path = path;
  engine.submit(std::move(spec));
  engine.drain();

  const std::string json = engine.report_json();
  const auto doc = xfci::obs::json::Value::parse(json);
  EXPECT_EQ(doc.req("schema").as_string(), "xfci-metrics-v1");
  EXPECT_EQ(doc.req("backend").as_string(), "serve");
  const auto& cache = doc.req("cache");
  EXPECT_EQ(cache.req("misses").as_double(), 1.0);
  EXPECT_EQ(cache.req("hits").as_double(), 0.0);
  const auto& jobs = doc.req("jobs");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs.at(0).req("state").as_string(), "done");
  EXPECT_EQ(doc.req("ranks").size(), 1u);
  EXPECT_EQ(doc.req("num_ranks").as_double(), 1.0);
}

TEST(Engine, PriorityParsing) {
  EXPECT_EQ(xv::parse_priority("interactive"), xv::Priority::kInteractive);
  EXPECT_EQ(xv::parse_priority("batch"), xv::Priority::kBatch);
  EXPECT_THROW(xv::parse_priority("urgent"), xfci::Error);
}
