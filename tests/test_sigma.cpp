// The load-bearing correctness tests of the library: the DGEMM-based sigma
// (the paper's algorithm), the MOC baseline, and the explicit
// Slater-Condon Hamiltonian must agree to machine precision on random
// symmetry-blocked Hamiltonians across electron counts, point groups and
// target irreps.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "chem/pointgroup.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci/sigma.hpp"
#include "fci/slater_condon.hpp"

namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;

namespace {

// Random integral tables respecting the orbital irrep structure: h is
// irrep-blocked, (pq|rs) vanishes unless the four irreps multiply to the
// totally symmetric irrep.
xi::IntegralTables random_tables(std::size_t norb, const std::string& group,
                                 std::vector<std::size_t> irreps,
                                 std::uint64_t seed) {
  xfci::Rng rng(seed);
  xi::IntegralTables t = xi::IntegralTables::empty(norb);
  t.group = xc::PointGroup::make(group);
  t.orbital_irreps = std::move(irreps);
  for (std::size_t p = 0; p < norb; ++p)
    for (std::size_t q = 0; q <= p; ++q) {
      const double v = (t.orbital_irreps[p] == t.orbital_irreps[q])
                           ? rng.uniform(-1, 1)
                           : 0.0;
      t.h(p, q) = v;
      t.h(q, p) = v;
    }
  for (std::size_t p = 0; p < norb; ++p)
    for (std::size_t q = 0; q <= p; ++q)
      for (std::size_t r = 0; r <= p; ++r)
        for (std::size_t s = 0; s <= r; ++s) {
          const std::size_t pq = p * (p + 1) / 2 + q;
          const std::size_t rs = r * (r + 1) / 2 + s;
          if (rs > pq) continue;
          const std::size_t h4 = t.group.product(
              t.group.product(t.orbital_irreps[p], t.orbital_irreps[q]),
              t.group.product(t.orbital_irreps[r], t.orbital_irreps[s]));
          t.eri.set(p, q, r, s, h4 == 0 ? rng.uniform(-1, 1) : 0.0);
        }
  return t;
}

struct SigmaCase {
  std::size_t norb, na, nb;
  const char* group;
  std::vector<std::size_t> irreps;
  std::size_t target;
};

void expect_algorithms_agree(const SigmaCase& cs, std::uint64_t seed) {
  const auto tables = random_tables(cs.norb, cs.group, cs.irreps, seed);
  const xf::CiSpace space(cs.norb, cs.na, cs.nb, tables.group,
                          tables.orbital_irreps, cs.target);
  ASSERT_GT(space.dimension(), 0u);
  const xf::SigmaContext ctx(space, tables);

  xf::SigmaDense dense(space, tables);
  xf::SigmaDgemm dgemm(ctx);
  xf::SigmaMoc moc(ctx);

  xfci::Rng rng(seed + 1);
  const std::vector<double> c = rng.signed_vector(space.dimension());
  std::vector<double> s_dense(c.size()), s_dgemm(c.size()), s_moc(c.size());
  dense.apply(c, s_dense);
  dgemm.apply(c, s_dgemm);
  moc.apply(c, s_moc);

  double d1 = 0.0, d2 = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    d1 = std::max(d1, std::abs(s_dgemm[i] - s_dense[i]));
    d2 = std::max(d2, std::abs(s_moc[i] - s_dense[i]));
    norm = std::max(norm, std::abs(s_dense[i]));
  }
  EXPECT_LT(d1, 1e-11 * std::max(1.0, norm))
      << "dgemm vs dense, dim=" << space.dimension();
  EXPECT_LT(d2, 1e-11 * std::max(1.0, norm))
      << "moc vs dense, dim=" << space.dimension();
}

}  // namespace

class SigmaAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SigmaAgreement, RandomHamiltonians) {
  const int i = GetParam();
  static const std::vector<SigmaCase> cases = {
      // C1 cases across electron counts, including edge cases.
      {4, 1, 1, "C1", {0, 0, 0, 0}, 0},
      {4, 2, 2, "C1", {0, 0, 0, 0}, 0},
      {5, 2, 1, "C1", {0, 0, 0, 0, 0}, 0},
      {5, 3, 2, "C1", {0, 0, 0, 0, 0}, 0},
      {6, 2, 2, "C1", {0, 0, 0, 0, 0, 0}, 0},
      {4, 2, 0, "C1", {0, 0, 0, 0}, 0},     // no beta electrons
      {4, 0, 2, "C1", {0, 0, 0, 0}, 0},     // no alpha electrons
      {4, 1, 0, "C1", {0, 0, 0, 0}, 0},     // single electron
      {4, 4, 3, "C1", {0, 0, 0, 0}, 0},     // nearly full shell
      {3, 3, 3, "C1", {0, 0, 0}, 0},        // completely full
      // C2v with scrambled irreps, all four targets.
      {6, 2, 2, "C2v", {0, 1, 0, 2, 3, 1}, 0},
      {6, 2, 2, "C2v", {0, 1, 0, 2, 3, 1}, 1},
      {6, 2, 2, "C2v", {0, 1, 0, 2, 3, 1}, 2},
      {6, 2, 2, "C2v", {0, 1, 0, 2, 3, 1}, 3},
      {6, 3, 2, "C2v", {0, 0, 1, 2, 3, 3}, 2},
      // Open shell in Cs.
      {5, 3, 1, "Cs", {0, 1, 0, 1, 0}, 1},
      // D2h, the group of the paper's C2 benchmark.
      {8, 2, 2, "D2h", {0, 5, 6, 7, 1, 2, 3, 4}, 0},
      {8, 3, 2, "D2h", {0, 5, 6, 7, 1, 2, 3, 4}, 5},
      {8, 2, 2, "D2h", {0, 0, 5, 5, 6, 6, 7, 7}, 4},
  };
  ASSERT_LT(static_cast<std::size_t>(i), cases.size());
  expect_algorithms_agree(cases[static_cast<std::size_t>(i)],
                          1234 + static_cast<std::uint64_t>(i));
}

INSTANTIATE_TEST_SUITE_P(Cases, SigmaAgreement, ::testing::Range(0, 19));

TEST(Sigma, HermiticityOfDgemm) {
  // <x|H y> == <H x|y> for random vectors.
  const auto tables = random_tables(6, "C2v", {0, 1, 0, 2, 3, 1}, 99);
  const xf::CiSpace space(6, 2, 2, tables.group, tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);

  xfci::Rng rng(5);
  const auto x = rng.signed_vector(space.dimension());
  const auto y = rng.signed_vector(space.dimension());
  std::vector<double> hx(x.size()), hy(y.size());
  op.apply(x, hx);
  op.apply(y, hy);
  double xhy = 0.0, hxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    xhy += x[i] * hy[i];
    hxy += hx[i] * y[i];
  }
  EXPECT_NEAR(xhy, hxy, 1e-10 * std::max(1.0, std::abs(xhy)));
}

TEST(Sigma, LinearityOfDgemm) {
  const auto tables = random_tables(5, "C1", {0, 0, 0, 0, 0}, 7);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);

  xfci::Rng rng(8);
  const auto x = rng.signed_vector(space.dimension());
  const auto y = rng.signed_vector(space.dimension());
  std::vector<double> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = 2.0 * x[i] - 3.0 * y[i];
  std::vector<double> hx(x.size()), hy(x.size()), hz(x.size());
  op.apply(x, hx);
  op.apply(y, hy);
  op.apply(z, hz);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(hz[i], 2.0 * hx[i] - 3.0 * hy[i], 1e-11);
}

TEST(Sigma, DiagonalMatchesSlaterCondon) {
  // hamiltonian_diagonal must equal <D|H|D> from hamiltonian_element.
  const auto tables = random_tables(6, "C2v", {0, 1, 2, 3, 0, 1}, 55);
  const xf::CiSpace space(6, 3, 2, tables.group, tables.orbital_irreps, 1);
  const auto diag = xf::hamiltonian_diagonal(space, tables);
  for (std::size_t i = 0; i < space.dimension(); i += 3) {
    const auto d = xf::determinant_at(space, i);
    EXPECT_NEAR(diag[i], xf::hamiltonian_element(tables, d, d), 1e-12);
  }
}

TEST(Sigma, DenseHamiltonianIsSymmetric) {
  const auto tables = random_tables(5, "C1", {0, 0, 0, 0, 0}, 3);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  const auto h = xf::build_dense_hamiltonian(space, tables);
  EXPECT_TRUE(h.is_symmetric(1e-12));
}

TEST(Sigma, StatsAccumulate) {
  const auto tables = random_tables(6, "C1", std::vector<std::size_t>(6, 0),
                                    11);
  const xf::CiSpace space(6, 3, 3, tables.group, tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);
  std::vector<double> c(space.dimension(), 1.0), s(space.dimension());
  op.apply(c, s);
  EXPECT_GT(op.stats().dgemm_flops, 0.0);
  EXPECT_GT(op.stats().gather_words, 0.0);
  const double f1 = op.stats().dgemm_flops;
  op.apply(c, s);
  EXPECT_NEAR(op.stats().dgemm_flops, 2.0 * f1, 1e-6);
  op.reset_stats();
  EXPECT_EQ(op.stats().dgemm_flops, 0.0);
}

TEST(TransposeVector, RoundTripIsIdentity) {
  const auto group = xc::PointGroup::make("C2v");
  const std::vector<std::size_t> irreps = {0, 1, 0, 2, 3};
  const xf::CiSpace space(5, 2, 3, group, irreps, 2);
  xfci::Rng rng(21);
  const auto v = rng.signed_vector(space.dimension());
  std::vector<double> t, back;
  space.transpose_vector(v, t);
  space.transposed().transpose_vector(t, back);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_DOUBLE_EQ(back[i], v[i]);
}
