// Tests for the iterative eigensolvers: all four methods must reach the
// dense ground state; the auto-adjusted method's Eq. 14 recovery is
// verified; the model-space preconditioner is checked directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "chem/pointgroup.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci/slater_condon.hpp"
#include "fci/solvers.hpp"
#include "linalg/eigen.hpp"

namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;

namespace {

// A small random-but-physical Hamiltonian: diagonally dominant like a real
// CI matrix (diagonal spread >> off-diagonal scale).
xi::IntegralTables model_tables(std::size_t norb, std::uint64_t seed) {
  xfci::Rng rng(seed);
  xi::IntegralTables t = xi::IntegralTables::empty(norb);
  for (std::size_t p = 0; p < norb; ++p) {
    t.h(p, p) = -2.0 + 0.7 * static_cast<double>(p);  // orbital ladder
    for (std::size_t q = 0; q < p; ++q) {
      const double v = 0.05 * rng.uniform(-1, 1);
      t.h(p, q) = v;
      t.h(q, p) = v;
    }
  }
  for (std::size_t p = 0; p < norb; ++p)
    for (std::size_t q = 0; q <= p; ++q)
      for (std::size_t r = 0; r <= p; ++r)
        for (std::size_t s = 0; s <= r; ++s) {
          const std::size_t pq = p * (p + 1) / 2 + q;
          const std::size_t rs = r * (r + 1) / 2 + s;
          if (rs > pq) continue;
          const double scale = (p == q && r == s) ? 0.3 : 0.05;
          t.eri.set(p, q, r, s, scale * rng.uniform(0, 1));
        }
  t.core_energy = 1.25;
  return t;
}

double dense_ground_energy(const xf::CiSpace& space,
                           const xi::IntegralTables& t) {
  const auto h = xf::build_dense_hamiltonian(space, t);
  return xfci::linalg::eigh(h).values[0] + t.core_energy;
}

}  // namespace

class MethodTest : public ::testing::TestWithParam<xf::Method> {};

TEST_P(MethodTest, ReachesDenseGroundState) {
  const auto tables = model_tables(6, 42);
  const xf::CiSpace space(6, 2, 2, tables.group, tables.orbital_irreps, 0);
  const double e_ref = dense_ground_energy(space, tables);

  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);
  xf::SolverOptions opt;
  opt.method = GetParam();
  opt.model_space = 12;
  opt.max_iterations = 200;
  const auto res = xf::solve_lowest(op, tables, opt);
  EXPECT_TRUE(res.converged) << xf::method_name(GetParam());
  EXPECT_NEAR(res.energy, e_ref, 1e-8) << xf::method_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodTest,
                         ::testing::Values(xf::Method::kDavidson,
                                           xf::Method::kOlsen,
                                           xf::Method::kModifiedOlsen,
                                           xf::Method::kAutoAdjusted));

TEST(Solvers, ConvergedVectorIsEigenvector) {
  const auto tables = model_tables(5, 7);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);
  xf::SolverOptions opt;
  opt.method = xf::Method::kAutoAdjusted;
  opt.residual_tolerance = 1e-8;
  const auto res = xf::solve_lowest(op, tables, opt);
  ASSERT_TRUE(res.converged);

  std::vector<double> sig(space.dimension());
  op.apply(res.vector, sig);
  const double e_elec = res.energy - tables.core_energy;
  double rnorm = 0.0;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const double r = sig[i] - e_elec * res.vector[i];
    rnorm += r * r;
  }
  EXPECT_LT(std::sqrt(rnorm), 1e-7);
  // Normalized.
  double n = 0.0;
  for (double x : res.vector) n += x * x;
  EXPECT_NEAR(n, 1.0, 1e-12);
}

TEST(Solvers, AutoAdjustedCompetitiveWithSubspace) {
  // Paper Table 2: the auto-adjusted single-vector method needs no more
  // iterations than the Davidson subspace method (often fewer).
  const auto tables = model_tables(6, 13);
  const xf::CiSpace space(6, 3, 3, tables.group, tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);

  xf::SolverOptions opt;
  opt.energy_tolerance = 1e-10;
  opt.model_space = 20;
  opt.method = xf::Method::kDavidson;
  const auto dav = xf::solve_lowest(op, tables, opt);
  opt.method = xf::Method::kAutoAdjusted;
  const auto aut = xf::solve_lowest(op, tables, opt);
  ASSERT_TRUE(dav.converged);
  ASSERT_TRUE(aut.converged);
  EXPECT_NEAR(dav.energy, aut.energy, 1e-8);
  // Allow a small margin; the paper found auto <= subspace.
  EXPECT_LE(aut.iterations, dav.iterations + 5);
}

TEST(Solvers, Eq14RecoveryIsExact) {
  // Verify the identity behind Eq. 14 directly: after one auto-adjusted
  // update C' = S (C + lambda t), the new energy satisfies
  // E' = S^2 (E + 2 lambda <C|H|t> + lambda^2 <t|H|t>).
  const auto tables = model_tables(5, 99);
  const xf::CiSpace space(5, 2, 1, tables.group, tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xf::SigmaDgemm op(ctx);
  const std::size_t dim = space.dimension();

  xfci::Rng rng(3);
  std::vector<double> c = rng.signed_vector(dim);
  double n = 0.0;
  for (double x : c) n += x * x;
  for (auto& x : c) x /= std::sqrt(n);

  std::vector<double> sigma(dim), t = rng.signed_vector(dim);
  op.apply(c, sigma);
  double e = 0.0;
  for (std::size_t i = 0; i < dim; ++i) e += c[i] * sigma[i];
  // Orthogonalize t against c as the solver guarantees.
  double ov = 0.0;
  for (std::size_t i = 0; i < dim; ++i) ov += c[i] * t[i];
  for (std::size_t i = 0; i < dim; ++i) t[i] -= ov * c[i];

  std::vector<double> ht(dim);
  op.apply(t, ht);
  double b = 0.0, tht = 0.0, tt = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    b += c[i] * ht[i];
    tht += t[i] * ht[i];
    tt += t[i] * t[i];
  }

  const double lambda = 0.37;
  const double s2 = 1.0 / (1.0 + lambda * lambda * tt);
  std::vector<double> cn(dim);
  for (std::size_t i = 0; i < dim; ++i)
    cn[i] = std::sqrt(s2) * (c[i] + lambda * t[i]);
  std::vector<double> sn(dim);
  op.apply(cn, sn);
  double en = 0.0;
  for (std::size_t i = 0; i < dim; ++i) en += cn[i] * sn[i];

  // Eq. 14 rearranged.
  const double tht_recovered = (en / s2 - e - 2.0 * lambda * b) /
                               (lambda * lambda);
  EXPECT_NEAR(tht_recovered, tht, 1e-9 * std::max(1.0, std::abs(tht)));
}

TEST(ModelSpacePreconditioner, ExactInsideDiagonalOutside) {
  const auto tables = model_tables(5, 21);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  const xf::ModelSpacePreconditioner pre(space, tables, 8);
  const std::size_t dim = space.dimension();

  const double e = -7.7;  // away from any eigenvalue
  xfci::Rng rng(4);
  const auto x = rng.signed_vector(dim);
  std::vector<double> y(dim);
  pre.apply_inverse(e, x, y);

  // Verify (H0 - e) y == x where H0 is exact on the model block and
  // diagonal outside.  Build H0 explicitly from the dense Hamiltonian.
  const auto h = xf::build_dense_hamiltonian(space, tables);
  const auto diag = xf::hamiltonian_diagonal(space, tables);
  // Identify the model set: the 8 lowest diagonals.
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return diag[a] < diag[b]; });
  std::vector<bool> in_model(dim, false);
  for (std::size_t i = 0; i < 8; ++i) in_model[order[i]] = true;

  for (std::size_t i = 0; i < dim; ++i) {
    double lhs = (diag[i] - e) * y[i];
    if (in_model[i]) {
      lhs = -e * y[i];
      for (std::size_t j = 0; j < dim; ++j)
        if (in_model[j]) lhs += h(i, j) * y[j];
    }
    EXPECT_NEAR(lhs, x[i], 1e-9) << "component " << i;
  }
}

TEST(ModelSpacePreconditioner, InitialGuessIsModelGroundState) {
  const auto tables = model_tables(5, 33);
  const xf::CiSpace space(5, 2, 2, tables.group, tables.orbital_irreps, 0);
  const xf::ModelSpacePreconditioner pre(space, tables, 10);
  const auto guess = pre.initial_guess(space.dimension());
  double n = 0.0;
  std::size_t nonzero = 0;
  for (double x : guess) {
    n += x * x;
    if (x != 0.0) ++nonzero;
  }
  EXPECT_NEAR(n, 1.0, 1e-10);  // eigh returns a normalized column
  // The model set may be enlarged (at most doubled) by the transpose
  // closure for nalpha == nbeta.
  EXPECT_LE(nonzero, 20u);
  EXPECT_GE(nonzero, 1u);
}
