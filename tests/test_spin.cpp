// Tests for the S^2 operator machinery: apply_s_squared against the
// expectation value and explicit spin eigenstates, and the Loewdin spin
// projection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "integrals/tables.hpp"
#include "systems/model_systems.hpp"
#include "systems/standard_systems.hpp"

namespace xf = xfci::fci;
namespace xs = xfci::systems;
namespace xi = xfci::integrals;

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

TEST(ApplyS2, ConsistentWithExpectation) {
  const auto tables = xs::hubbard_chain(5, 1.0, 3.0);
  const xf::CiSpace space(5, 3, 2, tables.group, tables.orbital_irreps, 0);
  xfci::Rng rng(5);
  auto c = rng.signed_vector(space.dimension());
  const double n = std::sqrt(dot(c, c));
  for (auto& x : c) x /= n;

  std::vector<double> s2c(c.size());
  xf::apply_s_squared(space, c, s2c);
  EXPECT_NEAR(dot(c, s2c), xf::s_squared_expectation(space, c), 1e-10);
}

TEST(ApplyS2, IsSymmetricOperator) {
  const auto tables = xs::hubbard_chain(4, 1.0, 2.0);
  const xf::CiSpace space(4, 2, 2, tables.group, tables.orbital_irreps, 0);
  xfci::Rng rng(6);
  const auto x = rng.signed_vector(space.dimension());
  const auto y = rng.signed_vector(space.dimension());
  std::vector<double> sx(x.size()), sy(y.size());
  xf::apply_s_squared(space, x, sx);
  xf::apply_s_squared(space, y, sy);
  EXPECT_NEAR(dot(x, sy), dot(sx, y), 1e-10);
}

TEST(ApplyS2, EigenstateOfConvergedFci) {
  // A converged nondegenerate FCI state is a spin eigenstate:
  // S^2 c = s(s+1) c elementwise.
  const auto sys = xs::water({});
  const xf::CiSpace space(sys.tables.norb, 5, 5, sys.tables.group,
                          sys.tables.orbital_irreps, 0);
  xf::FciOptions opt;
  opt.solver.method = xf::Method::kDavidson;  // reaches tight residuals
  opt.solver.residual_tolerance = 1e-8;
  opt.solver.max_iterations = 300;
  const auto res = xf::run_fci(sys.tables, 5, 5, 0, opt);
  ASSERT_TRUE(res.solve.converged);
  std::vector<double> s2c(space.dimension());
  xf::apply_s_squared(space, res.solve.vector, s2c);
  for (std::size_t i = 0; i < s2c.size(); ++i)
    EXPECT_NEAR(s2c[i], 0.0 * res.solve.vector[i], 2e-6) << i;  // singlet
}

TEST(ApplyS2, MaximumSpinDeterminant) {
  // All-alpha determinants have S = Sz = N/2 exactly: S^2 d = S(S+1) d.
  const auto tables = xs::hubbard_chain(4, 1.0, 1.0);
  const xf::CiSpace space(4, 3, 0, tables.group, tables.orbital_irreps, 0);
  std::vector<double> c(space.dimension(), 0.0);
  c[1] = 1.0;
  std::vector<double> s2c(c.size());
  xf::apply_s_squared(space, c, s2c);
  const double s = 1.5;
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(s2c[i], s * (s + 1.0) * c[i], 1e-12);
}

TEST(SpinProject, SeparatesSingletAndTriplet) {
  // Two electrons in two orbitals, Ms = 0: the determinant |a_up b_dn| is
  // an equal mixture of singlet and triplet.  Projection must produce pure
  // eigenstates with half the weight each.
  const auto tables = xs::hubbard_chain(2, 1.0, 0.0);
  const xf::CiSpace space(2, 1, 1, tables.group, tables.orbital_irreps, 0);
  // Determinant: alpha in orbital 0, beta in orbital 1.
  std::vector<double> c(space.dimension(), 0.0);
  const std::size_t ia = space.alpha().address(0b01);
  const std::size_t ib = space.beta().address(0b10);
  c[space.index(0, ia, ib)] = 1.0;

  auto singlet = c;
  const double w0 = xf::spin_project(space, 0.0, singlet);
  EXPECT_NEAR(w0 * w0, 0.5, 1e-12);  // half the weight is singlet
  EXPECT_NEAR(xf::s_squared_expectation(space, singlet) / (w0 * w0), 0.0,
              1e-10);

  auto triplet = c;
  const double w1 = xf::spin_project(space, 1.0, triplet);
  EXPECT_NEAR(w1 * w1, 0.5, 1e-12);
  EXPECT_NEAR(xf::s_squared_expectation(space, triplet) / (w1 * w1), 2.0,
              1e-10);

  // The two projections are orthogonal and sum back to the determinant.
  EXPECT_NEAR(dot(singlet, triplet), 0.0, 1e-12);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(singlet[i] + triplet[i], c[i], 1e-12);
}

TEST(SpinProject, IdempotentOnEigenstates) {
  const auto tables = xs::hubbard_chain(4, 1.0, 4.0);
  const xf::CiSpace space(4, 2, 2, tables.group, tables.orbital_irreps, 0);
  xfci::Rng rng(8);
  auto c = rng.signed_vector(space.dimension());
  const double w = xf::spin_project(space, 1.0, c);
  ASSERT_GT(w, 1e-6);
  auto c2 = c;
  const double w2 = xf::spin_project(space, 1.0, c2);
  EXPECT_NEAR(w2, w, 1e-9);  // P^2 = P
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c2[i], c[i], 1e-10);
  // And the projected vector is a spin eigenstate.
  double norm2 = 0.0;
  for (double x : c) norm2 += x * x;
  EXPECT_NEAR(xf::s_squared_expectation(space, c) / norm2, 2.0, 1e-8);
}

TEST(SpinProject, UnreachableSpinThrows) {
  const auto tables = xs::hubbard_chain(3, 1.0, 1.0);
  const xf::CiSpace space(3, 2, 1, tables.group, tables.orbital_irreps, 0);
  std::vector<double> c(space.dimension(), 1.0);
  // Sz = 1/2, so S = 0 is unreachable; S = 5 exceeds N/2.
  EXPECT_THROW(xf::spin_project(space, 0.0, c), xfci::Error);
  EXPECT_THROW(xf::spin_project(space, 5.0, c), xfci::Error);
}
