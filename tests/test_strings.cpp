// Tests for occupation strings, addressing and the coupling tables: counts,
// rank/unrank bijection, and sign consistency against explicit operator
// algebra.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chem/pointgroup.hpp"
#include "fci/strings.hpp"

namespace xf = xfci::fci;
namespace xc = xfci::chem;

namespace {

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

// Sign of creating p on mask by explicit counting.
int ref_create_sign(xf::StringMask m, int p) {
  int cnt = 0;
  for (int i = 0; i < p; ++i)
    if (m & (xf::StringMask{1} << i)) ++cnt;
  return cnt % 2 == 0 ? 1 : -1;
}

}  // namespace

TEST(Signs, CreateMatchesExplicitCount) {
  for (xf::StringMask m : {0ull, 0b1011ull, 0b110101ull, 0b11111100ull}) {
    for (int p = 0; p < 10; ++p) {
      if (m & (xf::StringMask{1} << p)) continue;
      EXPECT_EQ(xf::create_sign(m, p), ref_create_sign(m, p));
    }
  }
}

TEST(Signs, CreateAnnihilateRoundTrip) {
  // a_p a^+_p |K> = |K> exactly (signs cancel).
  const xf::StringMask m = 0b101101;
  for (int p : {1, 4, 6, 9}) {
    if (m & (xf::StringMask{1} << p)) continue;
    const int s1 = xf::create_sign(m, p);
    const int s2 = xf::annihilate_sign(m | (xf::StringMask{1} << p), p);
    EXPECT_EQ(s1 * s2, 1);
  }
}

TEST(Signs, AnticommutationOfCreations) {
  // a+p a+q = -a+q a+p for p != q.
  const xf::StringMask m = 0b1001;
  const int p = 2, q = 5;
  const int s_pq = xf::create_sign(m, q) *
                   xf::create_sign(m | (xf::StringMask{1} << q), p);
  const int s_qp = xf::create_sign(m, p) *
                   xf::create_sign(m | (xf::StringMask{1} << p), q);
  EXPECT_EQ(s_pq, -s_qp);
}

struct SpaceParam {
  std::size_t norb, nelec;
};
class StringSpaceTest : public ::testing::TestWithParam<SpaceParam> {};

TEST_P(StringSpaceTest, CountsAndAddressingC1) {
  const auto p = GetParam();
  const auto group = xc::PointGroup::make("C1");
  const std::vector<std::size_t> irreps(p.norb, 0);
  const xf::StringSpace sp(p.norb, p.nelec, group, irreps);
  EXPECT_EQ(sp.total(), binomial(p.norb, p.nelec));
  EXPECT_EQ(sp.count(0), sp.total());
  // rank/unrank bijection.
  std::set<xf::StringMask> seen;
  for (std::size_t i = 0; i < sp.count(0); ++i) {
    const xf::StringMask m = sp.mask(0, i);
    EXPECT_EQ(__builtin_popcountll(m), static_cast<int>(p.nelec));
    EXPECT_EQ(sp.address(m), i);
    EXPECT_EQ(sp.irrep_of(m), 0u);
    seen.insert(m);
  }
  EXPECT_EQ(seen.size(), sp.total());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StringSpaceTest,
                         ::testing::Values(SpaceParam{4, 2}, SpaceParam{6, 3},
                                           SpaceParam{8, 1}, SpaceParam{8, 0},
                                           SpaceParam{10, 5},
                                           SpaceParam{12, 4},
                                           SpaceParam{5, 5}));

TEST(StringSpace, SymmetryBlocksPartitionTheSpace) {
  const auto group = xc::PointGroup::make("D2h");
  // Orbital irreps like an atom: s, s, px, py, pz (B3u=?, ...): just use a
  // spread of labels.
  const std::vector<std::size_t> irreps = {0, 0, 1, 2, 4, 3, 5, 6};
  const xf::StringSpace sp(8, 3, group, irreps);
  std::size_t total = 0;
  for (std::size_t h = 0; h < sp.num_irreps(); ++h) {
    for (std::size_t i = 0; i < sp.count(h); ++i) {
      const auto m = sp.mask(h, i);
      EXPECT_EQ(xf::string_irrep(m, group, irreps), h);
      EXPECT_EQ(sp.address(m), i);
      EXPECT_EQ(sp.irrep_of(m), h);
    }
    total += sp.count(h);
  }
  EXPECT_EQ(total, binomial(8, 3));
}

TEST(StringIrrep, XorOfOccupiedOrbitals) {
  const auto group = xc::PointGroup::make("D2h");
  const std::vector<std::size_t> irreps = {0, 1, 2, 3, 4, 5, 6, 7};
  // Empty string: totally symmetric.
  EXPECT_EQ(xf::string_irrep(0, group, irreps), 0u);
  // Single orbital: its own irrep.
  for (std::size_t p = 0; p < 8; ++p)
    EXPECT_EQ(xf::string_irrep(xf::StringMask{1} << p, group, irreps),
              irreps[p]);
  // Product rule.
  EXPECT_EQ(xf::string_irrep(0b110, group, irreps),
            group.product(irreps[1], irreps[2]));
}

TEST(CreationTable, CompleteAndSignConsistent) {
  const auto group = xc::PointGroup::make("C2v");
  const std::vector<std::size_t> irreps = {0, 0, 1, 2, 3, 0};
  const xf::StringSpace m1(6, 2, group, irreps);
  const xf::StringSpace full(6, 3, group, irreps);
  const xf::CreationTable table(m1, full, irreps);

  std::size_t entries = 0;
  for (std::size_t h = 0; h < m1.num_irreps(); ++h) {
    for (std::size_t i = 0; i < m1.count(h); ++i) {
      const xf::StringMask k = m1.mask(h, i);
      for (const auto& cr : table.list(h, i)) {
        EXPECT_FALSE(k & (xf::StringMask{1} << cr.orbital));
        const xf::StringMask j = k | (xf::StringMask{1} << cr.orbital);
        EXPECT_EQ(full.irrep_of(j), cr.irrep);
        EXPECT_EQ(full.address(j), cr.address);
        EXPECT_EQ(static_cast<int>(cr.sign),
                  xf::create_sign(k, cr.orbital));
        ++entries;
      }
    }
  }
  // Every (K', r) pair appears exactly once: C(6,2) * 4 free orbitals.
  EXPECT_EQ(entries, binomial(6, 2) * 4);
}

TEST(PairCreationTable, CompleteAndOrdered) {
  const auto group = xc::PointGroup::make("C1");
  const std::vector<std::size_t> irreps(6, 0);
  const xf::StringSpace m2(6, 1, group, irreps);
  const xf::StringSpace full(6, 3, group, irreps);
  const xf::PairCreationTable table(m2, full, irreps);

  std::size_t entries = 0;
  for (std::size_t i = 0; i < m2.count(0); ++i) {
    const xf::StringMask k = m2.mask(0, i);
    for (const auto& pc : table.list(0, i)) {
      EXPECT_GT(pc.hi, pc.lo);
      const xf::StringMask j = k | (xf::StringMask{1} << pc.hi) |
                               (xf::StringMask{1} << pc.lo);
      EXPECT_EQ(__builtin_popcountll(j), 3);
      EXPECT_EQ(full.address(j), pc.address);
      // Sign: a+hi a+lo applied lo-first.
      const int s = xf::create_sign(k, pc.lo) *
                    xf::create_sign(k | (xf::StringMask{1} << pc.lo), pc.hi);
      EXPECT_EQ(static_cast<int>(pc.sign), s);
      ++entries;
    }
  }
  EXPECT_EQ(entries, binomial(6, 1) * binomial(5, 2));
}

TEST(SingleExcitationTable, ResolutionOfIdentityCount) {
  // Every string has exactly nelec * (norb - nelec) + nelec entries
  // (off-diagonal plus p == q diagonal terms).
  const auto group = xc::PointGroup::make("C1");
  const std::vector<std::size_t> irreps(7, 0);
  const xf::StringSpace sp(7, 3, group, irreps);
  const xf::SingleExcitationTable table(sp, irreps);
  for (std::size_t i = 0; i < sp.count(0); ++i)
    EXPECT_EQ(table.list(0, i).size(), 3u * 4u + 3u);
}

TEST(SingleExcitationTable, DiagonalEntriesHavePlusOne) {
  const auto group = xc::PointGroup::make("C1");
  const std::vector<std::size_t> irreps(5, 0);
  const xf::StringSpace sp(5, 2, group, irreps);
  const xf::SingleExcitationTable table(sp, irreps);
  for (std::size_t i = 0; i < sp.count(0); ++i) {
    for (const auto& ex : table.list(0, i)) {
      if (ex.p == ex.q) {
        EXPECT_EQ(ex.address, i);
        EXPECT_DOUBLE_EQ(ex.sign, 1.0);
      }
    }
  }
}
