// Tests for the prepared standard systems: every molecule of the paper
// builds end-to-end, detects the right point group, and produces sane
// electron counts and irrep guesses.

#include <gtest/gtest.h>

#include "fci/fci.hpp"
#include "systems/standard_systems.hpp"

namespace xs = xfci::systems;
namespace xf = xfci::fci;

TEST(Systems, WaterDefaults) {
  const auto sys = xs::water({});
  EXPECT_EQ(sys.tables.group.name(), "C2v");
  EXPECT_EQ(sys.nalpha, 5u);
  EXPECT_EQ(sys.nbeta, 5u);
  EXPECT_EQ(sys.tables.norb, 7u);
  EXPECT_NEAR(sys.scf_energy, -74.9420799, 2e-4);
}

TEST(Systems, MethanolIsC1) {
  const auto sys = xs::methanol({});
  EXPECT_EQ(sys.tables.group.name(), "C1");
  EXPECT_EQ(sys.nalpha + sys.nbeta, 18u);
}

TEST(Systems, HydrogenPeroxideIsC2) {
  const auto sys = xs::hydrogen_peroxide({});
  EXPECT_EQ(sys.tables.group.name(), "C2");
  EXPECT_EQ(sys.nalpha + sys.nbeta, 18u);
}

TEST(Systems, CnCationIsC2vClosedShell) {
  const auto sys = xs::cn_cation({});
  EXPECT_EQ(sys.tables.group.name(), "C2v");
  EXPECT_EQ(sys.nalpha, 6u);
  EXPECT_EQ(sys.nbeta, 6u);
}

TEST(Systems, OxygenSpeciesOpenShells) {
  const auto o = xs::oxygen_atom({});
  EXPECT_EQ(o.tables.group.name(), "D2h");
  EXPECT_EQ(o.nalpha, 5u);
  EXPECT_EQ(o.nbeta, 3u);
  const auto om = xs::oxygen_anion({});
  EXPECT_EQ(om.nalpha, 5u);
  EXPECT_EQ(om.nbeta, 4u);
}

TEST(Systems, CarbonDimerIsD2h) {
  const auto sys = xs::carbon_dimer({});
  EXPECT_EQ(sys.tables.group.name(), "D2h");
  EXPECT_EQ(sys.nalpha, 6u);
  EXPECT_EQ(sys.nbeta, 6u);
}

TEST(Systems, FreezeAndTruncateCompose) {
  xs::SpaceOptions o;
  o.basis = "sto-3g";
  o.freeze_core = 2;
  o.max_orbitals = 8;
  const auto sys = xs::cn_cation(o);
  EXPECT_EQ(sys.nalpha, 4u);
  EXPECT_EQ(sys.nbeta, 4u);
  EXPECT_EQ(sys.tables.norb, 8u);
  // Frozen-core energy contribution keeps total energies physical: the
  // FCI in the reduced space still lands below the SCF reference.
  const auto res = xf::run_fci(sys.tables, sys.nalpha, sys.nbeta, 0);
  ASSERT_TRUE(res.solve.converged);
  EXPECT_LT(res.solve.energy, sys.scf_energy);
}

TEST(Systems, UseSymmetryFalseRelabelsC1) {
  xs::SpaceOptions o;
  o.use_symmetry = false;
  const auto sys = xs::water(o);
  EXPECT_EQ(sys.tables.group.name(), "C1");
  for (auto h : sys.tables.orbital_irreps) EXPECT_EQ(h, 0u);
}

TEST(Systems, ScfDeterminantIrrepMatchesProbe) {
  // For the O atom triplet the 3P components span B1g/B2g/B3g degenerately;
  // the determinant guess and the exhaustive probe may land on different
  // components but must agree in energy.
  xs::SpaceOptions o;
  o.basis = "sto-3g";
  auto sys = xs::oxygen_atom(o);
  const auto guess = xs::scf_determinant_irrep(sys);
  const auto probe = xs::find_ground_irrep(sys);
  const auto e_guess =
      xf::run_fci(sys.tables, sys.nalpha, sys.nbeta, guess).solve.energy;
  const auto e_probe =
      xf::run_fci(sys.tables, sys.nalpha, sys.nbeta, probe).solve.energy;
  EXPECT_NEAR(e_guess, e_probe, 1e-7);
  // And the guess is a gerade B irrep (two open p orbitals).
  const auto name = sys.tables.group.irrep_name(guess);
  EXPECT_EQ(name.back(), 'g');
  EXPECT_EQ(name.front(), 'B');
}

TEST(Systems, ClosedShellDeterminantIrrepIsTotallySymmetric) {
  const auto sys = xs::water({});
  EXPECT_EQ(xs::scf_determinant_irrep(sys), 0u);
}

TEST(Systems, H2StretchedStillPrepares) {
  // The level-shift retry ladder must rescue difficult SCF cases.
  xs::SpaceOptions o;
  o.basis = "x-dz";
  const auto sys = xs::h2(8.0, o);
  EXPECT_EQ(sys.nalpha, 1u);
  // RHF at 8 bohr sits far above 2 E(H); just require it prepared.
  EXPECT_LT(sys.scf_energy, 0.0);
}
