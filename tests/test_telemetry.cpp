// Live telemetry registry (DESIGN.md §16): lock-free per-thread lanes,
// log-bucketed histograms, snapshot/merge semantics, the disabled-path
// no-perturbation guarantee, and the HTTP exporter round-trip.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/metric_names.hpp"
#include "common/telemetry.hpp"
#include "linalg/gemm.hpp"
#include "obs/exporter.hpp"
#include "parallel/thread_team.hpp"

namespace obs = xfci::obs;
namespace m = xfci::obs::metric;

namespace {

// Local specs: tests exercise registry mechanics, not the production
// metric surface (which lives in metric_names.hpp and is covered by the
// `telemetry` lint rule).
constexpr m::MetricSpec kTestCounter{"xfci_test_events_total", "events"};
constexpr m::MetricSpec kTestGauge{"xfci_test_level", "level"};
constexpr m::MetricSpec kTestHist{"xfci_test_latency_seconds", "latency"};

TEST(Telemetry, DisabledHandlesDropWrites) {
  obs::Registry reg;  // disabled until set_enabled(true)
  obs::Counter c = reg.counter(kTestCounter);
  obs::Gauge g = reg.gauge(kTestGauge);
  obs::Histogram h = reg.histogram(kTestHist);
  c.inc(5);
  g.set(3.0);
  h.observe(0.01);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.find(kTestCounter.name)->value, 0u);
  EXPECT_EQ(snap.find(kTestGauge.name)->gauge, 0.0);
  EXPECT_EQ(snap.find(kTestHist.name)->count, 0u);
}

TEST(Telemetry, DefaultConstructedHandlesAreInert) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.add(1.0);
  h.observe(1.0);  // must not crash
}

TEST(Telemetry, RegistrationDeduplicates) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Counter a = reg.counter(kTestCounter, {{m::kLabelStage, "x"}});
  obs::Counter b = reg.counter(kTestCounter, {{m::kLabelStage, "x"}});
  obs::Counter other = reg.counter(kTestCounter, {{m::kLabelStage, "y"}});
  a.inc(2);
  b.inc(3);
  other.inc(7);
  EXPECT_EQ(reg.num_metrics(), 2u);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find(kTestCounter.name, {{m::kLabelStage, "x"}})->value,
            5u);
  EXPECT_EQ(snap.find(kTestCounter.name, {{m::kLabelStage, "y"}})->value,
            7u);
}

// The heart of the lane design: concurrent increments from a real thread
// team must be exact, not approximate — each thread owns its cells.
TEST(Telemetry, ConcurrentIncrementsAreExact) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Counter c = reg.counter(kTestCounter);
  obs::Histogram h = reg.histogram(kTestHist);
  constexpr std::size_t kOps = 100000;
  xfci::pv::ThreadTeam team(4);
  team.for_dynamic(kOps, [&](std::size_t i, std::size_t) {
    c.inc();
    if (i % 100 == 0) h.observe(1e-5);
  });
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find(kTestCounter.name)->value, kOps);
  EXPECT_EQ(snap.find(kTestHist.name)->count, kOps / 100);
}

TEST(Telemetry, GaugeAddIsExactForIntegers) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Gauge g = reg.gauge(kTestGauge);
  constexpr std::size_t kOps = 20000;
  xfci::pv::ThreadTeam team(4);
  team.for_dynamic(kOps, [&](std::size_t, std::size_t) { g.add(1.0); });
  team.for_dynamic(kOps / 2,
                   [&](std::size_t, std::size_t) { g.add(-1.0); });
  EXPECT_EQ(reg.snapshot().find(kTestGauge.name)->gauge,
            static_cast<double>(kOps - kOps / 2));
}

TEST(Telemetry, HistogramBucketBoundaries) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Histogram h = reg.histogram(kTestHist);
  const std::vector<double>& bounds = obs::histogram_bounds();
  ASSERT_EQ(bounds.size(), obs::kHistogramBounds);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[1], 2e-6);

  h.observe(1e-6);        // == bound 0: le semantics, lands in bucket 0
  h.observe(1.5e-6);      // (bound0, bound1]: bucket 1
  h.observe(bounds[5]);   // == bound 5: bucket 5
  h.observe(0.0);         // below everything: bucket 0
  h.observe(bounds.back() * 2.0);  // beyond the last bound: overflow

  const obs::Snapshot snap = reg.snapshot();
  const obs::SnapshotMetric* hist = snap.find(kTestHist.name);
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), obs::kHistogramBounds + 1);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[5], 1u);
  EXPECT_EQ(hist->buckets.back(), 1u);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_NEAR(hist->sum,
              1e-6 + 1.5e-6 + bounds[5] + 0.0 + bounds.back() * 2.0, 1e-12);
}

obs::Snapshot make_snapshot(std::uint64_t events, double level,
                            std::uint64_t slow) {
  obs::Registry reg;
  reg.set_enabled(true);
  reg.counter(kTestCounter).inc(events);
  reg.gauge(kTestGauge).set(level);
  obs::Histogram h = reg.histogram(kTestHist);
  for (std::uint64_t i = 0; i < slow; ++i) h.observe(0.5);
  return reg.snapshot();
}

TEST(Telemetry, MergeIsAssociativeAndCommutative) {
  const obs::Snapshot a = make_snapshot(1, 5.0, 2);
  const obs::Snapshot b = make_snapshot(10, 3.0, 0);
  const obs::Snapshot c = make_snapshot(100, 4.0, 7);

  const obs::Snapshot left = obs::merge(obs::merge(a, b), c);
  const obs::Snapshot right = obs::merge(a, obs::merge(b, c));
  ASSERT_EQ(left.metrics.size(), right.metrics.size());
  for (std::size_t i = 0; i < left.metrics.size(); ++i) {
    EXPECT_EQ(left.metrics[i].name, right.metrics[i].name);
    EXPECT_EQ(left.metrics[i].value, right.metrics[i].value);
    EXPECT_EQ(left.metrics[i].buckets, right.metrics[i].buckets);
    EXPECT_EQ(left.metrics[i].count, right.metrics[i].count);
    EXPECT_EQ(left.metrics[i].gauge, right.metrics[i].gauge);
  }
  EXPECT_EQ(left.find(kTestCounter.name)->value, 111u);
  EXPECT_EQ(left.find(kTestGauge.name)->gauge, 5.0);  // gauges take max
  EXPECT_EQ(left.find(kTestHist.name)->count, 9u);

  const obs::Snapshot ab = obs::merge(a, b);
  const obs::Snapshot ba = obs::merge(b, a);
  EXPECT_EQ(ab.find(kTestCounter.name)->value,
            ba.find(kTestCounter.name)->value);
  EXPECT_EQ(ab.find(kTestHist.name)->buckets,
            ba.find(kTestHist.name)->buckets);
}

TEST(Telemetry, MergeUnionsDisjointSeries) {
  obs::Registry ra;
  ra.set_enabled(true);
  ra.counter(kTestCounter, {{m::kLabelStage, "a"}}).inc(1);
  obs::Registry rb;
  rb.set_enabled(true);
  rb.counter(kTestCounter, {{m::kLabelStage, "b"}}).inc(2);
  const obs::Snapshot merged = obs::merge(ra.snapshot(), rb.snapshot());
  ASSERT_EQ(merged.metrics.size(), 2u);
  EXPECT_EQ(merged.find(kTestCounter.name, {{m::kLabelStage, "a"}})->value,
            1u);
  EXPECT_EQ(merged.find(kTestCounter.name, {{m::kLabelStage, "b"}})->value,
            2u);
}

TEST(Telemetry, JsonAndPrometheusRenderDeterministically) {
  const obs::Snapshot snap = make_snapshot(3, 2.5, 1);
  const std::string j1 = obs::telemetry_json(snap, 123.25);
  const std::string j2 = obs::telemetry_json(snap, 123.25);
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"schema\":\"xfci-telemetry-v1\""), std::string::npos);
  EXPECT_NE(j1.find("\"wall_unix_seconds\":123.25"), std::string::npos);

  const std::string text = obs::prometheus_text(snap);
  EXPECT_EQ(text, obs::prometheus_text(snap));
  EXPECT_NE(text.find("# TYPE xfci_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("xfci_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
}

// Snapshots race the writers by design; counters must only ever grow
// between successive snapshots.  Run under tsan this is also the data
// race stress for the lane protocol.
TEST(Telemetry, SnapshotsAreMonotonicUnderConcurrentWrites) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Counter c = reg.counter(kTestCounter);
  obs::Histogram h = reg.histogram(kTestHist);
  std::uint64_t last_value = 0;
  std::uint64_t last_count = 0;
  bool monotonic = true;
  xfci::pv::ThreadTeam team(4);
  team.for_static(4, [&](std::size_t begin, std::size_t, std::size_t tid) {
    if (tid == 0 && begin == 0) {
      // One slice snapshots in a loop while the others write.
      for (int i = 0; i < 200; ++i) {
        const obs::Snapshot snap = reg.snapshot();
        const std::uint64_t v = snap.find(kTestCounter.name)->value;
        const std::uint64_t n = snap.find(kTestHist.name)->count;
        if (v < last_value || n < last_count) monotonic = false;
        last_value = v;
        last_count = n;
      }
    } else {
      for (int i = 0; i < 50000; ++i) {
        c.inc();
        h.observe(1e-4);
      }
    }
  });
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(reg.snapshot().find(kTestCounter.name)->value, 3u * 50000u);
}

// The global-registry no-perturbation contract, at the layer that is
// instrumented the deepest: gemm must produce bitwise-identical output
// whether telemetry is enabled or not.
TEST(Telemetry, EnabledTelemetryDoesNotPerturbGemm) {
  const bool was_enabled = xfci::obs::telemetry().enabled();
  constexpr std::size_t kDim = 64;
  std::vector<double> a(kDim * kDim), b(kDim * kDim);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    b[i] = 0.125 * static_cast<double>(i % 23) - 0.5;
  }
  std::vector<double> c_off(kDim * kDim, 0.0), c_on(kDim * kDim, 0.0);

  xfci::obs::telemetry().set_enabled(false);
  xfci::linalg::gemm(false, false, kDim, kDim, kDim, 1.0, a.data(), kDim,
                     b.data(), kDim, 0.0, c_off.data(), kDim);
  xfci::obs::telemetry().set_enabled(true);
  xfci::linalg::gemm(false, false, kDim, kDim, kDim, 1.0, a.data(), kDim,
                     b.data(), kDim, 0.0, c_on.data(), kDim);
  xfci::obs::telemetry().set_enabled(was_enabled);

  EXPECT_EQ(0, std::memcmp(c_off.data(), c_on.data(),
                           c_off.size() * sizeof(double)));
  // The enabled pass must have shown up in the global registry.
  const obs::Snapshot global = xfci::obs::telemetry().snapshot();
  const obs::SnapshotMetric* calls = global.find(m::kGemmCalls.name);
  ASSERT_NE(calls, nullptr);
  EXPECT_GE(calls->value, 1u);
}

// ----------------------------------------------------------- exporter --

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Exporter, ServesMetricsHealthAndSnapshot) {
  obs::Registry reg;
  reg.set_enabled(true);
  reg.counter(kTestCounter).inc(42);
  bool healthy = true;
  obs::ExporterOptions opt;
  opt.port = 0;  // ephemeral
  opt.healthy = [&healthy] { return healthy; };
  obs::Exporter exporter(reg, std::move(opt));
  ASSERT_GT(exporter.port(), 0);

  const std::string metrics = http_get(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("xfci_test_events_total 42"), std::string::npos);

  EXPECT_NE(http_get(exporter.port(), "/healthz").find("200 OK"),
            std::string::npos);
  healthy = false;
  EXPECT_NE(http_get(exporter.port(), "/healthz").find("503"),
            std::string::npos);

  const std::string snap = http_get(exporter.port(), "/snapshot.json");
  EXPECT_NE(snap.find("xfci-telemetry-v1"), std::string::npos);

  EXPECT_NE(http_get(exporter.port(), "/nope").find("404"),
            std::string::npos);
  exporter.stop();
}

TEST(Exporter, WritesFinalSnapshotFileOnStop) {
  obs::Registry reg;
  reg.set_enabled(true);
  reg.counter(kTestCounter).inc(7);
  const std::string path =
      ::testing::TempDir() + "/xfci_test_telemetry_snap.json";
  {
    obs::ExporterOptions opt;
    opt.snapshot_path = path;
    obs::Exporter exporter(reg, std::move(opt));
  }  // destructor stops and writes the final snapshot
  FILE* fh = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fh, nullptr);
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, fh);
  std::fclose(fh);
  buf[n] = '\0';
  const std::string doc(buf);
  EXPECT_NE(doc.find("xfci-telemetry-v1"), std::string::npos);
  EXPECT_NE(doc.find("xfci_test_events_total"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Exporter, StartTelemetryHonoursWantedFlag) {
  // Not wanted: no exporter, registry untouched.
  EXPECT_EQ(obs::start_telemetry(false, 0, ""), nullptr);
  // Out-of-range port is a contract violation even when not wanted.
  EXPECT_THROW((void)obs::start_telemetry(false, 65536, ""), xfci::Error);
}

}  // namespace
