// Randomized stress for the std::thread execution backend, aimed at the
// tsan preset: many short parallel regions with irregular bodies so the
// ThreadTeam handoff (generation counter, condition variables, atomic
// claim counter) and the OrderedSequencer commit gate get hammered from
// every interleaving the scheduler can produce.  Seeds are fixed, so a
// failure reproduces exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "parallel/task_pool.hpp"
#include "parallel/thread_team.hpp"

namespace {

using xfci::Rng;
using xfci::pv::OrderedSequencer;
using xfci::pv::TaskPool;
using xfci::pv::TaskPoolParams;
using xfci::pv::ThreadTeam;

// A little non-uniform work so items finish at scrambled times.
void spin(std::size_t iters) {
  volatile std::size_t sink = 0;
  for (std::size_t i = 0; i < iters; ++i) sink = sink + i;
}

TEST(ThreadTeamStress, DynamicClaimsEachIndexExactlyOnce) {
  ThreadTeam team(4);
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    const std::size_t count = 1 + rng.index(2000);
    std::vector<std::atomic<int>> claims(count);
    team.for_dynamic(count, [&](std::size_t i, std::size_t tid) {
      ASSERT_LT(tid, team.size());
      spin(i % 37);
      claims[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(claims[i].load(), 1) << "round " << round << " index " << i;
  }
}

TEST(ThreadTeamStress, StaticSlicesPartitionExactly) {
  ThreadTeam team(4);
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    const std::size_t count = rng.index(3000);  // zero allowed
    std::vector<std::atomic<int>> touched(count);
    std::vector<std::atomic<int>> slice_used(team.size());
    team.for_static(count, [&](std::size_t b, std::size_t e,
                               std::size_t slice) {
      ASSERT_LE(b, e);
      ASSERT_LE(e, count);
      ASSERT_LT(slice, team.size());
      slice_used[slice].fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = b; i < e; ++i)
        touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(touched[i].load(), 1);
    for (std::size_t s = 0; s < team.size(); ++s)
      ASSERT_LE(slice_used[s].load(), 1);
  }
}

TEST(ThreadTeamStress, PoolChunksCoverEveryItemOnce) {
  ThreadTeam team(4);
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const std::size_t items = 1 + rng.index(4000);
    TaskPoolParams params;
    params.nfine_per_rank = 1 + rng.index(32);
    params.nlarge_per_rank = 1 + rng.index(8);
    params.nsmall_per_rank = 1 + rng.index(16);
    params.aggregate = rng.index(4) != 0;
    const TaskPool pool(items, team.size(), params);
    std::vector<std::atomic<int>> claims(items);
    team.for_pool(pool, [&](std::size_t ci, std::size_t) {
      const auto [b, e] = pool.chunk(ci);
      ASSERT_LE(b, e);
      ASSERT_LE(e, items);
      spin(ci % 53);
      for (std::size_t i = b; i < e; ++i)
        claims[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < items; ++i)
      ASSERT_EQ(claims[i].load(), 1) << "round " << round << " item " << i;
  }
}

TEST(ThreadTeamStress, NestedRegionsRunInline) {
  ThreadTeam outer(4);
  ThreadTeam inner(4);
  std::atomic<std::size_t> total{0};
  outer.for_dynamic(16, [&](std::size_t, std::size_t) {
    ASSERT_TRUE(ThreadTeam::in_parallel_region());
    // Nested call must degrade to inline execution, not deadlock.
    inner.for_dynamic(8, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(ThreadTeam::in_parallel_region());
  EXPECT_EQ(total.load(), 16u * 8u);
}

TEST(ThreadTeamStress, ExceptionPropagatesAndTeamStaysUsable) {
  ThreadTeam team(4);
  Rng rng(4);
  for (int round = 0; round < 10; ++round) {
    const std::size_t count = 64 + rng.index(512);
    const std::size_t bad = rng.index(count);
    EXPECT_THROW(
        team.for_dynamic(count,
                         [&](std::size_t i, std::size_t) {
                           spin(i % 29);
                           XFCI_REQUIRE(i != bad, "poisoned index");
                         }),
        xfci::Error);
    // The team must come back clean: a full region right after the throw.
    std::atomic<std::size_t> ok{0};
    team.for_dynamic(100, [&](std::size_t, std::size_t) {
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ok.load(), 100u);
  }
}

TEST(ThreadTeamStress, ResilientPoolSurvivesStragglersAndWorkerDeaths) {
  // Randomized kill/straggler schedule against for_pool_resilient: some
  // workers retire after a pre-drawn number of claims (mimicking the
  // kThreads fault model, where the dying worker commits its last chunk
  // before leaving), others are slowed.  Survivors must still claim every
  // chunk exactly once and commit in index order.
  ThreadTeam team(4);
  Rng rng(6);
  for (int round = 0; round < 10; ++round) {
    const std::size_t items = 256 + rng.index(2000);
    TaskPoolParams params;
    params.nfine_per_rank = 1 + rng.index(16);
    const TaskPool pool(items, team.size(), params);
    const std::size_t nchunks = pool.num_chunks();

    // Up to size()-1 workers die; at least one always survives.
    std::vector<std::size_t> kill_at(team.size(), 0);  // 0 = immortal
    const std::size_t ndead = rng.index(team.size());
    for (std::size_t k = 0; k < ndead; ++k)
      kill_at[1 + rng.index(team.size() - 1)] = 1 + rng.index(4);
    std::vector<std::size_t> slow(nchunks);
    for (auto& s : slow) s = rng.index(500);

    std::vector<std::size_t> claims(team.size(), 0);
    std::vector<std::atomic<int>> touched(items);
    OrderedSequencer seq;
    std::vector<std::size_t> order;
    order.reserve(nchunks);
    team.for_pool_resilient(pool, [&](std::size_t ci, std::size_t tid) {
      const bool dies =
          kill_at[tid] != 0 && ++claims[tid] == kill_at[tid];
      const auto [b, e] = pool.chunk(ci);
      spin(slow[ci]);
      for (std::size_t i = b; i < e; ++i)
        touched[i].fetch_add(1, std::memory_order_relaxed);
      seq.wait_turn(ci);
      order.push_back(ci);
      seq.complete(ci);
      return !dies;  // the dying worker still committed its chunk
    });
    for (std::size_t i = 0; i < items; ++i)
      ASSERT_EQ(touched[i].load(), 1) << "round " << round << " item " << i;
    ASSERT_EQ(order.size(), nchunks);
    for (std::size_t i = 0; i < nchunks; ++i)
      ASSERT_EQ(order[i], i) << "round " << round;
  }
}

TEST(ThreadTeamStress, ResilientPoolAllWorkersRetiringThrows) {
  ThreadTeam team(4);
  TaskPoolParams params;
  params.nfine_per_rank = 8;
  const TaskPool pool(512, team.size(), params);
  ASSERT_GT(pool.num_chunks(), team.size());
  EXPECT_THROW(
      team.for_pool_resilient(
          pool, [&](std::size_t, std::size_t) { return false; }),
      xfci::Error);
  // The team must come back clean after the failed region.
  std::atomic<std::size_t> ok{0};
  team.for_dynamic(100, [&](std::size_t, std::size_t) {
    ok.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_EQ(ok.load(), 100u);

  // Same contract on the serial path.
  ThreadTeam serial(1);
  EXPECT_THROW(
      serial.for_pool_resilient(
          pool, [&](std::size_t, std::size_t) { return false; }),
      xfci::Error);
}

TEST(OrderedSequencerStress, CommitsRetireInIndexOrder) {
  ThreadTeam team(4);
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    const std::size_t sections = 32 + rng.index(256);
    // Pre-drawn delays: Rng is not thread-safe, workers only read.
    std::vector<std::size_t> delay(sections);
    for (auto& d : delay) d = rng.index(200);
    OrderedSequencer seq;
    std::vector<std::size_t> order;
    order.reserve(sections);
    team.for_dynamic(sections, [&](std::size_t i, std::size_t) {
      spin(delay[i]);  // scramble arrival order at the gate
      seq.wait_turn(i);
      order.push_back(i);  // serialized by the sequencer
      seq.complete(i);
    });
    ASSERT_EQ(order.size(), sections);
    for (std::size_t i = 0; i < sections; ++i)
      ASSERT_EQ(order[i], i) << "round " << round;
  }
}

TEST(OrderedSequencerStress, ResetRestartsTheGate) {
  ThreadTeam team(3);
  OrderedSequencer seq;
  for (int pass = 0; pass < 5; ++pass) {
    std::vector<std::size_t> order;
    team.for_dynamic(24, [&](std::size_t i, std::size_t) {
      spin(i * 7 % 41);
      seq.wait_turn(i);
      order.push_back(i);
      seq.complete(i);
    });
    ASSERT_EQ(order.size(), 24u);
    for (std::size_t i = 0; i < order.size(); ++i) ASSERT_EQ(order[i], i);
    seq.reset();
  }
}

}  // namespace
