// Tests for the shared-memory execution backend: the ThreadTeam pool and
// OrderedSequencer primitives, the threaded blocked GEMM, and the
// ExecutionMode::kThreads sigma build -- which must be bitwise identical
// to the simulate backend for every thread count (the determinism the
// ordered-commit mixed-spin phase guarantees).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "chem/molecule.hpp"
#include "common/rng.hpp"
#include "fci/fci.hpp"
#include "fci_parallel/parallel_fci.hpp"
#include "integrals/basis.hpp"
#include "linalg/gemm.hpp"
#include "parallel/task_pool.hpp"
#include "parallel/thread_team.hpp"
#include "scf/scf.hpp"

namespace pv = xfci::pv;
namespace xf = xfci::fci;
namespace xl = xfci::linalg;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;
namespace fcp = xfci::fcp;

namespace {

const xi::IntegralTables& be_tables() {
  static const xi::IntegralTables t = [] {
    const auto mol = xc::Molecule::from_xyz_bohr("Be 0 0 0\n");
    const auto basis = xi::BasisSet::build("x-dz", mol);
    return xfci::scf::prepare_mo_system(mol, basis, 1).tables;
  }();
  return t;
}

}  // namespace

// ------------------------------------------------------------ ThreadTeam ----

TEST(ThreadTeam, ForDynamicVisitsEachIndexExactlyOnce) {
  pv::ThreadTeam team(4);
  ASSERT_EQ(team.size(), 4u);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  team.for_dynamic(n, [&](std::size_t i, std::size_t tid) {
    EXPECT_LT(tid, team.size());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadTeam, ForStaticSlicesTileTheRange) {
  pv::ThreadTeam team(3);
  for (std::size_t n : {1u, 2u, 3u, 7u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    team.for_static(n, [&](std::size_t b, std::size_t e, std::size_t slice) {
      EXPECT_LT(slice, team.size());
      EXPECT_LE(e, n);
      for (std::size_t i = b; i < e; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadTeam, ForPoolClaimsEveryChunk) {
  pv::ThreadTeam team(4);
  const pv::TaskPool pool(6400, 4);
  std::vector<std::atomic<int>> item_hits(6400);
  team.for_pool(pool, [&](std::size_t chunk, std::size_t) {
    const auto [b, e] = pool.chunk(chunk);
    for (std::size_t i = b; i < e; ++i)
      item_hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 6400; ++i) EXPECT_EQ(item_hits[i].load(), 1);
}

TEST(ThreadTeam, NestedRegionsRunInlineWithoutDeadlock) {
  pv::ThreadTeam team(4);
  EXPECT_FALSE(pv::ThreadTeam::in_parallel_region());
  std::atomic<std::size_t> inner_total{0};
  team.for_dynamic(8, [&](std::size_t, std::size_t tid) {
    EXPECT_TRUE(pv::ThreadTeam::in_parallel_region());
    // A nested request on the same (busy) team must run inline on this
    // worker, preserving its tid for per-thread scratch.
    team.for_dynamic(5, [&](std::size_t, std::size_t inner_tid) {
      EXPECT_EQ(inner_tid, tid);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(pv::ThreadTeam::in_parallel_region());
  EXPECT_EQ(inner_total.load(), 40u);
}

TEST(ThreadTeam, PropagatesExceptions) {
  pv::ThreadTeam team(4);
  EXPECT_THROW(team.for_dynamic(100,
                                [&](std::size_t i, std::size_t) {
                                  if (i == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The team must remain usable after a failed region.
  std::atomic<int> ran{0};
  team.for_dynamic(10, [&](std::size_t, std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(OrderedSequencer, EnforcesCommitOrder) {
  pv::ThreadTeam team(4);
  pv::OrderedSequencer seq;
  std::vector<std::size_t> commits;  // guarded by the sequencer itself
  team.for_dynamic(64, [&](std::size_t i, std::size_t) {
    seq.wait_turn(i);
    commits.push_back(i);
    seq.complete(i);
  });
  ASSERT_EQ(commits.size(), 64u);
  for (std::size_t i = 0; i < commits.size(); ++i) EXPECT_EQ(commits[i], i);
}

// ---------------------------------------------------------- threaded gemm ----

TEST(ThreadedGemm, BitwiseMatchesSerial) {
  const std::size_t m = 257, n = 2100, k = 311;  // > one (jc, ic) tile
  xfci::Rng rng(5);
  const auto a = rng.signed_vector(m * k);
  const auto b = rng.signed_vector(k * n);
  std::vector<double> c_serial = rng.signed_vector(m * n);
  std::vector<double> c_thread = c_serial;

  xl::gemm(false, false, m, n, k, 1.5, a.data(), k, b.data(), n, 0.5,
           c_serial.data(), n);

  pv::ThreadTeam team(4);
  xl::set_gemm_team(&team);
  xl::gemm(false, false, m, n, k, 1.5, a.data(), k, b.data(), n, 0.5,
           c_thread.data(), n);
  xl::set_gemm_team(nullptr);
  EXPECT_EQ(xl::gemm_team(), nullptr);

  for (std::size_t i = 0; i < c_serial.size(); ++i)
    ASSERT_EQ(c_serial[i], c_thread[i]) << "element " << i;
}

// --------------------------------------------------------- threaded sigma ----

namespace {

// Applies the parallel sigma with the given execution mode and returns it.
std::vector<double> run_sigma(const xf::SigmaContext& ctx,
                              const fcp::ParallelOptions& opt,
                              std::span<const double> c) {
  fcp::ParallelSigma op(ctx, opt);
  std::vector<double> sigma(c.size());
  op.apply(c, sigma);
  return sigma;
}

}  // namespace

TEST(ThreadedSigma, BitwiseMatchesSimulateForEveryThreadCount) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(17);
  const auto c = rng.signed_vector(space.dimension());

  fcp::ParallelOptions opt;
  opt.num_ranks = 3;
  opt.algorithm = xf::Algorithm::kDgemm;
  const auto reference = run_sigma(ctx, opt, c);

  for (std::size_t nthreads : {1u, 2u, 4u}) {
    fcp::ParallelOptions topt = opt;
    topt.execution = fcp::ExecutionMode::kThreads;
    topt.num_threads = nthreads;
    const auto sigma = run_sigma(ctx, topt, c);
    double dmax = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      dmax = std::max(dmax, std::abs(sigma[i] - reference[i]));
    // The ordered commit makes the threaded build bitwise deterministic;
    // 1e-12 is the contract, 0.0 is what the design delivers.
    EXPECT_EQ(dmax, 0.0) << "threads=" << nthreads;
  }
}

TEST(ThreadedSigma, MatchesSerialOperator) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(23);
  const auto c = rng.signed_vector(space.dimension());

  auto serial = xf::make_sigma(xf::Algorithm::kDgemm, ctx);
  std::vector<double> s_serial(c.size());
  serial->apply(c, s_serial);

  fcp::ParallelOptions opt;
  opt.num_ranks = 4;
  opt.execution = fcp::ExecutionMode::kThreads;
  opt.num_threads = 2;
  const auto s_thread = run_sigma(ctx, opt, c);

  double dmax = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    dmax = std::max(dmax, std::abs(s_serial[i] - s_thread[i]));
    norm = std::max(norm, std::abs(s_serial[i]));
  }
  EXPECT_LT(dmax, 1e-12 * std::max(1.0, norm));
}

TEST(ThreadedSigma, MocBackendMatchesSimulate) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  xfci::Rng rng(31);
  const auto c = rng.signed_vector(space.dimension());

  fcp::ParallelOptions opt;
  opt.num_ranks = 3;
  opt.algorithm = xf::Algorithm::kMoc;
  const auto reference = run_sigma(ctx, opt, c);

  fcp::ParallelOptions topt = opt;
  topt.execution = fcp::ExecutionMode::kThreads;
  topt.num_threads = 2;
  const auto sigma = run_sigma(ctx, topt, c);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_EQ(sigma[i], reference[i]) << "element " << i;
}

TEST(ThreadedSigma, Ms0TransposeShortcutStaysDeterministic) {
  const auto& tables = be_tables();
  const xf::CiSpace space(tables.norb, 2, 2, tables.group,
                          tables.orbital_irreps, 0);
  const xf::SigmaContext ctx(space, tables);
  // Definite-parity vector so the transpose shortcut engages.
  xfci::Rng rng(41);
  const auto raw = rng.signed_vector(space.dimension());
  std::vector<double> pc;
  space.transpose_vector(raw, pc);
  std::vector<double> c(raw.size());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = raw[i] + pc[i];

  fcp::ParallelOptions opt;
  opt.num_ranks = 3;
  opt.ms0_transpose = true;
  const auto reference = run_sigma(ctx, opt, c);

  fcp::ParallelOptions topt = opt;
  topt.execution = fcp::ExecutionMode::kThreads;
  topt.num_threads = 4;
  const auto sigma = run_sigma(ctx, topt, c);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_EQ(sigma[i], reference[i]) << "element " << i;
}

TEST(ThreadedSolve, ReproducesSimulatedEnergyAndReportsWallClock) {
  const auto& tables = be_tables();
  fcp::ParallelOptions opt;
  opt.num_ranks = 2;
  const auto simulated = fcp::run_parallel_fci(tables, 2, 2, 0, opt);

  fcp::ParallelOptions topt = opt;
  topt.execution = fcp::ExecutionMode::kThreads;
  topt.num_threads = 2;
  const auto threaded = fcp::run_parallel_fci(tables, 2, 2, 0, topt);

  EXPECT_TRUE(threaded.solve.converged);
  EXPECT_NEAR(threaded.solve.energy, simulated.solve.energy, 1e-10);
  // The threads backend reports real wall-clock, not simulated X1 time.
  EXPECT_GT(threaded.total_seconds, 0.0);
  EXPECT_EQ(threaded.per_sigma.comm_words, 0.0);
}
