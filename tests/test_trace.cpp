// Observability-layer tests: deterministic JSON number rendering, the
// json::Value round trip, Chrome-trace structure (valid JSON, per-track
// monotone and properly nested spans), bitwise determinism of simulated
// traces, rank-count-independent span structure, the --metrics run
// report, and the guarantee that attaching a tracer does not perturb the
// computation.  The threads-backend stress test doubles as the tsan
// surface for concurrent lane appends.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "fci_parallel/parallel_fci.hpp"
#include "integrals/basis.hpp"
#include "scf/scf.hpp"

namespace xf = xfci::fci;
namespace xi = xfci::integrals;
namespace xc = xfci::chem;
namespace fcp = xfci::fcp;
namespace obs = xfci::obs;
namespace pv = xfci::pv;

namespace {

const xi::IntegralTables& be_tables() {
  static const xi::IntegralTables t = [] {
    const auto mol = xc::Molecule::from_xyz_bohr("Be 0 0 0\n");
    const auto basis = xi::BasisSet::build("x-dz", mol);
    return xfci::scf::prepare_mo_system(mol, basis, 1).tables;
  }();
  return t;
}

fcp::ParallelFciResult run_be(std::size_t ranks, obs::Tracer* tracer,
                              fcp::ExecutionMode mode =
                                  fcp::ExecutionMode::kSimulate,
                              pv::FaultPlan faults = {}) {
  const auto& tables = be_tables();
  fcp::ParallelOptions popt;
  popt.num_ranks = ranks;
  popt.cost = popt.cost.with_overhead_scale(0.02);
  popt.execution = mode;
  popt.num_threads = 2;
  popt.faults = faults;
  popt.tracer = tracer;
  xf::SolverOptions sopt;
  sopt.residual_tolerance = 1e-6;
  return fcp::run_parallel_fci(tables, 2, 2, 0, popt, sopt);
}

// Spans of one Chrome (pid, tid) pair, sorted for the nesting check.
struct Span {
  double t0, t1;
  std::string name;
};

// Validates the trace document shape and per-track span discipline;
// returns span names per tid of pid 0 for structure comparisons.
std::map<int, std::vector<std::string>> check_chrome(
    const std::string& text) {
  const obs::json::Value doc = obs::json::Value::parse(text);
  const obs::json::Value& events = doc.req("traceEvents");
  EXPECT_TRUE(events.is_array());

  std::map<std::pair<int, int>, std::vector<Span>> tracks;
  std::map<int, std::vector<std::string>> names_by_tid;
  for (const obs::json::Value& e : events.array()) {
    const std::string& ph = e.req("ph").as_string();
    const int pid = static_cast<int>(e.req("pid").as_double());
    const int tid = static_cast<int>(e.req("tid").as_double());
    if (ph == "M") continue;  // metadata rows carry no timestamps
    EXPECT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    const double ts = e.req("ts").as_double();
    EXPECT_GE(ts, 0.0);
    if (ph == "X") {
      const double dur = e.req("dur").as_double();
      EXPECT_GE(dur, 0.0);
      tracks[{pid, tid}].push_back(
          {ts, ts + dur, e.req("name").as_string()});
      if (pid == 0) names_by_tid[tid].push_back(e.req("name").as_string());
    }
  }

  // Per track: sort (t0 asc, longer first) and check strict stack
  // nesting -- a span either contains or is disjoint from its neighbour.
  // Adjacent phases share their barrier timestamp, but ts + dur only
  // reconstructs the shared boundary to ~1 ulp (microsecond scale), so
  // the comparisons allow 1 ns of slack.
  constexpr double kEpsUs = 1e-3;
  for (auto& [key, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.t0 != b.t0) return a.t0 < b.t0;
      return (a.t1 - a.t0) > (b.t1 - b.t0);
    });
    std::vector<const Span*> stack;
    for (const Span& s : spans) {
      while (!stack.empty() && s.t0 >= stack.back()->t1 - kEpsUs)
        stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(s.t1, stack.back()->t1 + kEpsUs)
            << s.name << " crosses " << stack.back()->name << " on track ("
            << key.first << "," << key.second << ")";
      }
      stack.push_back(&s);
    }
  }
  return names_by_tid;
}

}  // namespace

TEST(JsonNumber, IntegerAndRoundTripRendering) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(42.0), "42");
  EXPECT_EQ(obs::json_number(-7.0), "-7");
  // Round trip: parse(render(v)) restores the exact bits.
  for (double v : {0.1, -75.48355436856203, 1e-30, 3.141592653589793,
                   1.0 / 3.0, 1e300}) {
    const std::string s = obs::json_number(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  // JSON has no inf/nan.
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
}

TEST(JsonValue, ParseDumpFixedPoint) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("a").num(1.5);
  w.key("b").begin_array().uint(1).str("x\"y\n").boolean(true).null();
  w.end_array();
  w.key("nested").begin_object().key("k").num(-0.25).end_object();
  w.end_object();
  const std::string text = w.take();
  const obs::json::Value v = obs::json::Value::parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_DOUBLE_EQ(v.req("a").as_double(), 1.5);
  EXPECT_EQ(v.req("b").at(1).as_string(), "x\"y\n");
  EXPECT_EQ(v.req("nested").req("k").as_double(), -0.25);
  EXPECT_THROW(obs::json::Value::parse("{\"a\":}"), xfci::Error);
  EXPECT_THROW(obs::json::Value::parse("[1,2"), xfci::Error);
  EXPECT_THROW(obs::json::Value::parse("[] x"), xfci::Error);
}

TEST(Trace, SimulatedTraceIsDeterministic) {
  obs::Tracer a, b;
  a.enable(0);
  b.enable(0);
  const auto ra = run_be(4, &a);
  const auto rb = run_be(4, &b);
  EXPECT_EQ(ra.solve.energy, rb.solve.energy);
  EXPECT_GT(a.total_events(), 0u);
  EXPECT_EQ(a.chrome_trace_json(), b.chrome_trace_json());
}

TEST(Trace, TracingDoesNotPerturbTheRun) {
  obs::Tracer tracer;
  tracer.enable(0);
  const auto traced = run_be(4, &tracer);
  const auto plain = run_be(4, nullptr);
  // Bitwise-identical energy trajectory and simulated clock.
  ASSERT_EQ(traced.solve.energy_history.size(),
            plain.solve.energy_history.size());
  for (std::size_t i = 0; i < plain.solve.energy_history.size(); ++i)
    EXPECT_EQ(traced.solve.energy_history[i], plain.solve.energy_history[i]);
  EXPECT_EQ(traced.total_seconds, plain.total_seconds);
}

TEST(Trace, ChromeTraceValidAndNested) {
  obs::Tracer tracer;
  tracer.enable(0);
  run_be(4, &tracer);
  const auto names = check_chrome(tracer.chrome_trace_json());
  // One track per rank plus the control track.
  ASSERT_EQ(names.size(), 5u);
  // Control track (tid 4) must show the solver / sigma / phase hierarchy.
  const auto& control = names.at(4);
  for (const char* expected :
       {"iteration", "sigma", "beta_side", "alpha_side", "mixed",
        "vector_ops"})
    EXPECT_NE(std::find(control.begin(), control.end(), expected),
              control.end())
        << "missing control span " << expected;
  // Rank tracks carry the per-rank phase bodies and DLB task spans.
  const auto& rank0 = names.at(0);
  for (const char* expected : {"beta_side", "task"})
    EXPECT_NE(std::find(rank0.begin(), rank0.end(), expected), rank0.end())
        << "missing rank span " << expected;
}

TEST(Trace, SpanStructureIndependentOfRankCount) {
  // The control-track span *sequence* is a property of the algorithm, not
  // of the partitioning: both rank counts converge in the same number of
  // iterations on this system and emit the same ordered span names.
  obs::Tracer t2, t4;
  t2.enable(0);
  t4.enable(0);
  run_be(2, &t2);
  run_be(4, &t4);
  const auto n2 = check_chrome(t2.chrome_trace_json());
  const auto n4 = check_chrome(t4.chrome_trace_json());
  EXPECT_EQ(n2.at(2), n4.at(4));  // control track sits after the ranks
}

TEST(Trace, FaultRunRecordsRecoveryEvents) {
  obs::Tracer tracer;
  tracer.enable(0);
  pv::FaultPlan faults;
  // Op 9 of rank 0 is a remote mixed-phase gather on this system (local
  // ops never consult the drop table), so the drop is actually exercised.
  faults.kill_rank_at_op(1, 30).drop_op(0, 9);
  const auto res = run_be(4, &tracer, fcp::ExecutionMode::kSimulate, faults);
  EXPECT_TRUE(res.solve.converged);
  std::set<std::string> instants;
  for (std::size_t track = 0; track < tracer.num_tracks(); ++track)
    for (const obs::TraceEvent& e : tracer.events(track))
      if (e.phase == obs::TraceEvent::Phase::kInstant)
        instants.insert(e.name);
  EXPECT_TRUE(instants.count("rank_lost"));
  EXPECT_TRUE(instants.count("retransmit"));
  EXPECT_TRUE(instants.count("dlb_claim"));
  // The dropped op and the rank death both surface in the run report.
  EXPECT_GE(res.metrics.totals.ops_dropped, 1u);
  EXPECT_EQ(res.metrics.totals.ranks_lost, 1u);
}

TEST(Metrics, RunReportRoundTripsAndMatchesResult) {
  obs::Tracer tracer;
  tracer.enable(0);
  auto res = run_be(4, &tracer);
  res.metrics.run = "be_test";
  const std::string text = res.metrics.to_json();
  const obs::json::Value m = obs::json::Value::parse(text);
  EXPECT_EQ(m.req("schema").as_string(), "xfci-metrics-v1");
  EXPECT_EQ(m.req("run").as_string(), "be_test");
  EXPECT_EQ(m.req("backend").as_string(), "sim");
  EXPECT_EQ(static_cast<std::size_t>(m.req("num_ranks").as_double()), 4u);
  EXPECT_DOUBLE_EQ(m.req("solver").req("energy").as_double(),
                   res.solve.energy);
  EXPECT_EQ(m.req("solver").req("energy_history").size(),
            res.solve.energy_history.size());
  EXPECT_EQ(m.req("ranks").size(), 4u);
  EXPECT_GT(m.req("comm").req("dlb_calls").as_double(), 0.0);
  EXPECT_TRUE(m.get("cost_model") != nullptr);
  // dump(parse(x)) == x: the report uses only JsonWriter-canonical forms.
  EXPECT_EQ(m.dump(), text);
}

TEST(Trace, ThreadsBackendStress) {
  // Threaded pool + fault injection + tracing: the tsan preset runs this
  // to prove concurrent per-lane appends are race-free.
  obs::Tracer tracer;
  tracer.enable(0);
  pv::FaultPlan faults;
  faults.kill_worker_at_claim(1, 2);
  const auto res =
      run_be(4, &tracer, fcp::ExecutionMode::kThreads, faults);
  EXPECT_TRUE(res.solve.converged);
  EXPECT_NEAR(res.solve.energy, run_be(4, nullptr).solve.energy, 1e-9);
  EXPECT_GT(tracer.total_events(), 0u);
  check_chrome(tracer.chrome_trace_json());
}
