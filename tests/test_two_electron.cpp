// Tests for the two-electron integral engine: analytic values, permutation
// symmetry, Schwarz screening bound, and the packed storage.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chem/molecule.hpp"
#include "integrals/basis.hpp"
#include "integrals/two_electron.hpp"

namespace xi = xfci::integrals;
namespace xc = xfci::chem;

namespace {

xi::Shell s_shell(double a, std::array<double, 3> center,
                  std::size_t atom = 0) {
  xi::Shell sh;
  sh.l = 0;
  sh.atom = atom;
  sh.center = center;
  sh.primitives.push_back(xi::Primitive{a, 1.0});
  return sh;
}

}  // namespace

TEST(Eri, SingleGaussianSelfRepulsion) {
  // (ss|ss) = 2 sqrt(a/pi) for four normalized s Gaussians of exponent a on
  // one center.
  const double a = 1.9;
  const auto basis = xi::BasisSet::from_shells({s_shell(a, {0, 0, 0})});
  const auto eri = xi::compute_eri(basis);
  EXPECT_NEAR(eri(0, 0, 0, 0), 2.0 * std::sqrt(a / std::numbers::pi), 1e-12);
}

TEST(Eri, DistantChargesCoulombLimit) {
  // (aa|bb) with centers far apart approaches 1/R.
  const double r = 40.0;
  const auto basis = xi::BasisSet::from_shells(
      {s_shell(1.0, {0, 0, 0}, 0), s_shell(1.3, {0, 0, r}, 1)});
  const auto eri = xi::compute_eri(basis);
  EXPECT_NEAR(eri(0, 0, 1, 1), 1.0 / r, 1e-10);
}

TEST(Eri, EightFoldSymmetryThroughStorage) {
  // The packed index must identify all 8 permutations.
  const auto mol = xc::Molecule::from_xyz_bohr("O 0 0 0\nH 0 0 1.8\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto eri = xi::compute_eri(basis);
  const std::size_t n = basis.num_ao();
  for (std::size_t p = 0; p < n; p += 2)
    for (std::size_t q = 0; q <= p; q += 2)
      for (std::size_t r = 0; r <= p; r += 2)
        for (std::size_t s = 0; s <= r; ++s) {
          const double v = eri(p, q, r, s);
          EXPECT_DOUBLE_EQ(eri(q, p, r, s), v);
          EXPECT_DOUBLE_EQ(eri(p, q, s, r), v);
          EXPECT_DOUBLE_EQ(eri(r, s, p, q), v);
          EXPECT_DOUBLE_EQ(eri(s, r, q, p), v);
        }
}

TEST(Eri, PositiveDefiniteDiagonal) {
  // (pq|pq) >= 0 (it is a Coulomb self-energy).
  const auto mol = xc::Molecule::from_xyz_bohr("C 0 0 0\nO 0 0 2.13\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto eri = xi::compute_eri(basis);
  const std::size_t n = basis.num_ao();
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      EXPECT_GE(eri(p, q, p, q), -1e-14);
}

TEST(Eri, SchwarzInequalityHolds) {
  // |(pq|rs)| <= sqrt((pq|pq)) sqrt((rs|rs)) for every quartet.
  const auto mol = xc::Molecule::from_xyz_bohr("O 0 0 0\nH 1.43 0 1.108\n");
  const auto basis = xi::BasisSet::build("x-dz", mol);
  // Unscreened: the inequality is exact only for the exact tensor (screened
  // storage zeroes sub-threshold quartets, which can sit above a tiny
  // (pq|pq)-based bound).
  const auto eri = xi::compute_eri(basis, 0.0);
  const std::size_t n = basis.num_ao();
  for (std::size_t p = 0; p < n; p += 3)
    for (std::size_t q = 0; q < n; q += 2)
      for (std::size_t r = 0; r < n; r += 3)
        for (std::size_t s = 0; s < n; s += 2) {
          const double bound = std::sqrt(eri(p, q, p, q)) *
                               std::sqrt(eri(r, s, r, s));
          EXPECT_LE(std::abs(eri(p, q, r, s)), bound + 1e-12);
        }
}

TEST(Eri, ScreeningMatchesUnscreened) {
  // Screening at 1e-14 must not change integrals beyond that scale.
  const auto mol = xc::Molecule::from_xyz_bohr(
      "H 0 0 0\nH 0 0 1.4\nH 0 0 14\nH 0 0 15.4\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto screened = xi::compute_eri(basis, 1e-14);
  const auto full = xi::compute_eri(basis, 0.0);
  const std::size_t n = basis.num_ao();
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q <= p; ++q)
      for (std::size_t r = 0; r <= p; ++r)
        for (std::size_t s = 0; s <= r; ++s)
          EXPECT_NEAR(screened(p, q, r, s), full(p, q, r, s), 1e-10);
}

TEST(Eri, H2Sto3gKnownValues) {
  // Classic Szabo-Ostlund H2/STO-3G integrals at R = 1.4 bohr:
  // (11|11) = 0.7746, (11|22) = 0.5697, (11|12) = 0.4441, (12|12) = 0.2970.
  const auto mol = xc::Molecule::from_xyz_bohr("H 0 0 0\nH 0 0 1.4\n");
  const auto basis = xi::BasisSet::build("sto-3g", mol);
  const auto eri = xi::compute_eri(basis);
  EXPECT_NEAR(eri(0, 0, 0, 0), 0.7746, 1e-3);
  EXPECT_NEAR(eri(0, 0, 1, 1), 0.5697, 1e-3);
  EXPECT_NEAR(eri(0, 0, 0, 1), 0.4441, 1e-3);
  EXPECT_NEAR(eri(0, 1, 0, 1), 0.2970, 1e-3);
}

TEST(EriTensor, PackedIndexCanonical) {
  xi::EriTensor t(4);
  EXPECT_EQ(t.packed_index(0, 0, 0, 0), 0u);
  EXPECT_EQ(t.packed_index(3, 1, 2, 0), t.packed_index(1, 3, 0, 2));
  EXPECT_EQ(t.packed_index(3, 1, 2, 0), t.packed_index(2, 0, 3, 1));
  // Size: npair = 10, packed = 55.
  EXPECT_EQ(t.packed_size(), 55u);
}
