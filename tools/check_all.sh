#!/usr/bin/env bash
# Full correctness sweep: build + ctest under every preset in the
# sanitizer matrix, then the repo linter (with standalone header
# compiles), clang-tidy and clang-format when installed.
#
# Usage: tools/check_all.sh [preset ...]
#   With no arguments runs the full matrix: default asan ubsan tsan.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "== xfci_lint (tree + header self-containment) =="
python3 tools/xfci_lint.py --compile-headers --cxx "${CXX:-c++}"

echo "== xfci_lint --fix (dry run must be a no-op on a clean tree) =="
python3 tools/xfci_lint.py --fix

# Compile-time lock-discipline proof (DESIGN.md §13): the tsa preset
# builds the annotated tree under Clang -Wthread-safety -Werror and runs
# the FP-order-independent concurrency tests.
if command -v clang++ >/dev/null 2>&1; then
  echo "== clang thread-safety analysis (tsa preset) =="
  cmake --preset tsa
  cmake --build --preset tsa -j "${jobs}"
  ctest --preset tsa -j "${jobs}"
else
  echo "== clang++ not installed; thread-safety analysis skipped (preset: tsa) =="
fi

echo "== check_trace (validator self-test) =="
python3 tools/check_trace.py --self-test

# Traced C2 run against the first preset built above: both backends must
# emit Perfetto-loadable traces and a valid run report (DESIGN.md §11).
case "${presets[0]}" in
  default) obs_build=build ;;
  *)       obs_build="build-${presets[0]}" ;;
esac
c2="${obs_build}/examples/c2_on_simulated_x1"
if [ -x "${c2}" ]; then
  echo "== observability: traced C2 runs (${presets[0]} preset) =="
  obs_tmp=$(mktemp -d)
  trap 'rm -rf "${obs_tmp}"' EXIT
  "${c2}" 8 --trace "${obs_tmp}/sim.json" \
      --metrics "${obs_tmp}/sim_metrics.json" > /dev/null
  "${c2}" 4 --backend threads --threads 2 \
      --trace "${obs_tmp}/threads.json" \
      --metrics "${obs_tmp}/threads_metrics.json" > /dev/null
  python3 tools/check_trace.py \
      --trace "${obs_tmp}/sim.json" --trace "${obs_tmp}/threads.json" \
      --metrics "${obs_tmp}/sim_metrics.json" \
      --metrics "${obs_tmp}/threads_metrics.json" \
      --expect-spans iteration,sigma,beta_side,alpha_side,mixed,task
  # Live telemetry smoke (DESIGN.md §16): an instrumented run on an
  # ephemeral exporter port must leave a valid xfci-telemetry-v1
  # snapshot behind, and the telemetry-enabled energy output must be
  # bitwise identical to the plain run's.
  echo "== telemetry: instrumented C2 run + snapshot validation =="
  "${c2}" 4 > "${obs_tmp}/c2_plain.out"
  "${c2}" 4 --telemetry-port 0 --telemetry "${obs_tmp}/telemetry.json" \
      > "${obs_tmp}/c2_tele.out" 2> /dev/null
  python3 tools/check_trace.py --telemetry "${obs_tmp}/telemetry.json"
  if ! cmp -s "${obs_tmp}/c2_plain.out" "${obs_tmp}/c2_tele.out"; then
    diff "${obs_tmp}/c2_plain.out" "${obs_tmp}/c2_tele.out" || true
    echo "telemetry perturbed the C2 output (must be bitwise identical)"
    exit 1
  fi
else
  echo "== observability: ${c2} not built; skipped =="
fi

# Process-backend smoke (DESIGN.md §14): a faulted multi-process C2 run —
# forked ranks, real SIGKILLs, torn shm writes — must still converge, and
# no /dev/shm segment may survive the run.  tsan cannot host the fork+shm
# children (its runtime would report on its own bookkeeping; the tsan
# ctest preset excludes the Process* tests for the same reason), and the
# backend itself is Linux-only, so everything else prints a SKIPPED line.
if [ "$(uname -s)" = "Linux" ] && [ "${presets[0]}" != "tsan" ] \
    && [ -x "${c2}" ]; then
  echo "== process backend: faulted C2 smoke (${presets[0]} preset) =="
  shm_glob() { find /dev/shm -maxdepth 1 -name 'xfci-*' 2>/dev/null; }
  shm_before=$(shm_glob | wc -l)
  if ! "${c2}" 3 --backend process --ranks 3 --faults > /dev/null; then
    # A failed run must not leak its arenas past this script.
    shm_glob | xargs -r rm -f
    echo "process-backend smoke FAILED (leaked segments cleaned up)"
    exit 1
  fi
  shm_after=$(shm_glob | wc -l)
  if [ "${shm_after}" -gt "${shm_before}" ]; then
    shm_glob | xargs -r rm -f
    echo "process-backend smoke leaked shm segments (cleaned up)"
    exit 1
  fi
else
  echo "SKIPPED: process-backend smoke (needs Linux, a non-tsan preset," \
       "and a built ${c2})"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake --build --preset default --target tidy
else
  echo "== clang-tidy not installed; skipped (config: .clang-tidy) =="
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format =="
  cmake --build --preset default --target format-check
else
  echo "== clang-format not installed; skipped (config: .clang-format) =="
fi

echo "== all checks passed =="
