#!/usr/bin/env bash
# Full correctness sweep: build + ctest under every preset in the
# sanitizer matrix, then the repo linter (with standalone header
# compiles), clang-tidy and clang-format when installed.
#
# Usage: tools/check_all.sh [preset ...]
#   With no arguments runs the full matrix: default asan ubsan tsan.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "== xfci_lint (tree + header self-containment) =="
python3 tools/xfci_lint.py --compile-headers --cxx "${CXX:-c++}"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake --build --preset default --target tidy
else
  echo "== clang-tidy not installed; skipped (config: .clang-tidy) =="
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format =="
  cmake --build --preset default --target format-check
else
  echo "== clang-format not installed; skipped (config: .clang-format) =="
fi

echo "== all checks passed =="
