#!/usr/bin/env python3
"""Validator for the observability artifacts (DESIGN.md §11).

Three document kinds, matched to the files our drivers emit:

--trace FILE     Chrome-trace-event JSON written by --trace=FILE
                 (Tracer::write_chrome_trace).  Checks: valid JSON,
                 a traceEvents array of X/i/M events with non-negative
                 timestamps, per-(pid, tid) spans that nest as a proper
                 stack (a span either contains or is disjoint from its
                 neighbours), and per-pid thread_name metadata.
--metrics FILE   Run report written by --metrics=FILE (RunMetrics::write,
                 schema "xfci-metrics-v1").  Checks the schema tag, the
                 required keys, and internal consistency (one ranks[] row
                 per rank, solver histories of equal length, and — when a
                 serve::Engine report carries them — a well-formed "cache"
                 section and "jobs" array).
--bench FILE     BENCH_*.json written by the bench binaries (BenchReport,
                 schema "xfci-bench-v1"): schema tag, non-empty rows with
                 a consistent column set, numeric total_seconds.
--telemetry FILE Live-telemetry snapshot written by --telemetry=FILE
                 (obs::telemetry_json, schema "xfci-telemetry-v1").
                 Checks the schema tag, the shared histogram bounds
                 (positive, strictly increasing), per-metric shape by
                 kind (counter value, gauge value, histogram buckets /
                 sum / count with count == sum of buckets), Prometheus
                 name and label-key syntax, and duplicate series.
--prom FILE      Prometheus text exposition scraped from the exporter's
                 /metrics.  Checks line and label syntax, HELP/TYPE
                 declarations before samples, non-negative counters,
                 cumulative (non-decreasing) histogram buckets with a
                 le="+Inf" bucket equal to _count.  Given several --prom
                 files, they are treated as successive scrapes of one
                 process and every counter must be monotonic across them.

--expect-spans a,b,c   With --trace: require each named span to occur.

Exit status: 0 = all files valid, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

# Adjacent phase spans share a barrier timestamp, but Chrome events store
# (ts, dur) so the shared boundary is only reconstructed to ~1 ulp at
# microsecond magnitudes.  1 ns of slack is far above ulp noise and far
# below any real nesting violation.
EPS_US = 1e-3


def fail(findings: list, path: str, message: str) -> None:
    findings.append(f"{path}: {message}")


def load_json(path: str, findings: list):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(findings, path, f"unreadable or invalid JSON: {exc}")
        return None


# ------------------------------------------------------------------ trace --

def check_trace(path: str, doc, findings: list,
                expect_spans: list | None = None) -> None:
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(findings, path, "missing top-level traceEvents array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(findings, path, "traceEvents must be a non-empty array")
        return

    tracks: dict = {}      # (pid, tid) -> [(t0, t1, name)]
    named_tids: dict = {}  # pid -> set of tids with thread_name metadata
    span_names: set = set()
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(findings, path, f"{where}: event is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(findings, path, f"{where}: missing '{key}'")
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                named_tids.setdefault(e.get("pid"), set()).add(e.get("tid"))
            continue
        if ph not in ("X", "i"):
            fail(findings, path, f"{where}: unexpected phase {ph!r}")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(findings, path, f"{where}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(findings, path, f"{where}: bad dur {dur!r}")
                continue
            key = (e.get("pid"), e.get("tid"))
            tracks.setdefault(key, []).append((ts, ts + dur, e.get("name")))
            span_names.add(e.get("name"))

    # Per-track stack nesting: sort (t0 asc, longer first); each span must
    # be contained by or disjoint from the enclosing one.
    for key, spans in sorted(tracks.items()):
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        stack: list = []
        for t0, t1, name in spans:
            while stack and t0 >= stack[-1][1] - EPS_US:
                stack.pop()
            if stack and t1 > stack[-1][1] + EPS_US:
                fail(findings, path,
                     f"track (pid {key[0]}, tid {key[1]}): span '{name}' "
                     f"[{t0}, {t1}] crosses '{stack[-1][2]}' ending at "
                     f"{stack[-1][1]}")
            stack.append((t0, t1, name))

    # Every track that carries events should be labelled for Perfetto.
    for pid, tid in sorted(tracks):
        if tid not in named_tids.get(pid, set()):
            fail(findings, path,
                 f"track (pid {pid}, tid {tid}) has spans but no "
                 "thread_name metadata")

    for name in expect_spans or []:
        if name not in span_names:
            fail(findings, path, f"expected span '{name}' never occurs")


# ---------------------------------------------------------------- metrics --

METRICS_KEYS = ("schema", "backend", "algorithm", "num_ranks",
                "num_workers", "dimension", "total_seconds", "total_flops",
                "phases", "totals", "comm", "recovery", "ranks", "env")
PHASE_KEYS = ("beta_side", "alpha_side", "mixed", "transpose",
              "vector_ops", "load_imbalance", "recovery", "total",
              "comm_words", "flops", "count")
# Optional serve::Engine extensions (engine.cpp report_json).
CACHE_KEYS = ("hits", "misses", "evictions", "resident_bytes",
              "resident_entries")
JOB_KEYS = ("id", "name", "state", "priority", "cache_hit", "sequence",
            "queue_seconds", "setup_seconds", "solve_seconds",
            "total_seconds")
JOB_STATES = {"queued", "running", "done", "failed", "rejected"}


def check_metrics(path: str, doc, findings: list) -> None:
    if not isinstance(doc, dict):
        fail(findings, path, "metrics document is not an object")
        return
    if doc.get("schema") != "xfci-metrics-v1":
        fail(findings, path,
             f"schema is {doc.get('schema')!r}, want 'xfci-metrics-v1'")
    for key in METRICS_KEYS:
        if key not in doc:
            fail(findings, path, f"missing key '{key}'")
    for section in ("phases", "totals"):
        block = doc.get(section)
        if isinstance(block, dict):
            for key in PHASE_KEYS:
                if key not in block:
                    fail(findings, path, f"{section} missing '{key}'")
    ranks = doc.get("ranks")
    nranks = doc.get("num_ranks")
    if isinstance(ranks, list) and isinstance(nranks, (int, float)):
        if len(ranks) != int(nranks):
            fail(findings, path,
                 f"ranks has {len(ranks)} rows for num_ranks {nranks}")
    env = doc.get("env")
    if isinstance(env, list):
        # Every environment variable the run consulted (via xfci::env) —
        # name + whether it was set, value only when set.
        for row in env:
            if not isinstance(row, dict) or "name" not in row \
                    or "set" not in row:
                fail(findings, path, f"malformed env row {row!r}")
            elif bool(row["set"]) != ("value" in row):
                fail(findings, path,
                     f"env row '{row['name']}' must carry a value iff set")
    solver = doc.get("solver")
    if isinstance(solver, dict):
        eh = solver.get("energy_history", [])
        rh = solver.get("residual_history", [])
        if len(eh) != len(rh):
            fail(findings, path,
                 f"solver histories disagree: {len(eh)} energies vs "
                 f"{len(rh)} residuals")
        if solver.get("converged") and not eh:
            fail(findings, path, "solver converged with empty history")
    # serve::Engine reports extend the schema with cache statistics and a
    # per-job array; when present they must be internally consistent.
    if "cache" in doc:
        cache = doc["cache"]
        if not isinstance(cache, dict):
            fail(findings, path, "'cache' must be an object")
        else:
            for key in CACHE_KEYS:
                if key not in cache:
                    fail(findings, path, f"cache missing '{key}'")
                elif not isinstance(cache[key], (int, float)) \
                        or cache[key] < 0:
                    fail(findings, path,
                         f"cache '{key}' must be a non-negative number, "
                         f"got {cache[key]!r}")
            if "enabled" in cache and not isinstance(cache["enabled"], bool):
                fail(findings, path, "cache 'enabled' must be a boolean")
    jobs = doc.get("jobs")
    if jobs is not None:
        if not isinstance(jobs, list):
            fail(findings, path, "'jobs' must be an array")
        else:
            for i, job in enumerate(jobs):
                if not isinstance(job, dict):
                    fail(findings, path, f"jobs[{i}] is not an object")
                    continue
                for key in JOB_KEYS:
                    if key not in job:
                        fail(findings, path, f"jobs[{i}] missing '{key}'")
                if job.get("state") not in JOB_STATES:
                    fail(findings, path,
                         f"jobs[{i}] state {job.get('state')!r} not one of "
                         f"{sorted(JOB_STATES)}")


# ------------------------------------------------------------------ bench --

def check_bench(path: str, doc, findings: list) -> None:
    if not isinstance(doc, dict):
        fail(findings, path, "bench document is not an object")
        return
    if doc.get("schema") != "xfci-bench-v1":
        fail(findings, path,
             f"schema is {doc.get('schema')!r}, want 'xfci-bench-v1'")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        fail(findings, path, "missing or empty 'bench' name")
    if not isinstance(doc.get("config"), dict):
        fail(findings, path, "'config' must be an object")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(findings, path, "'rows' must be a non-empty array")
    else:
        columns = None
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not row:
                fail(findings, path, f"rows[{i}] is not a non-empty object")
                continue
            if columns is None:
                columns = set(row)
            elif set(row) != columns:
                fail(findings, path,
                     f"rows[{i}] columns {sorted(row)} differ from "
                     f"rows[0] {sorted(columns)}")
    if not isinstance(doc.get("total_seconds"), (int, float)):
        fail(findings, path, "'total_seconds' must be a number")


# -------------------------------------------------------------- telemetry --

# Prometheus data-model syntax (shared by the JSON snapshot and the text
# exposition: the snapshot promises its names scrape cleanly).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TELEMETRY_KINDS = {"counter", "gauge", "histogram"}


def check_telemetry(path: str, doc, findings: list) -> None:
    if not isinstance(doc, dict):
        fail(findings, path, "telemetry document is not an object")
        return
    if doc.get("schema") != "xfci-telemetry-v1":
        fail(findings, path,
             f"schema is {doc.get('schema')!r}, want 'xfci-telemetry-v1'")
    wall = doc.get("wall_unix_seconds")
    if not isinstance(wall, (int, float)) or wall < 0:
        fail(findings, path, f"bad wall_unix_seconds {wall!r}")
    bounds = doc.get("histogram_bounds")
    if not isinstance(bounds, list) or not bounds:
        fail(findings, path, "histogram_bounds must be a non-empty array")
        bounds = []
    else:
        for i, b in enumerate(bounds):
            if not isinstance(b, (int, float)) or b <= 0:
                fail(findings, path, f"histogram_bounds[{i}] {b!r} not > 0")
            elif i > 0 and b <= bounds[i - 1]:
                fail(findings, path,
                     f"histogram_bounds[{i}] {b!r} not increasing")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(findings, path, "'metrics' must be an array")
        return
    seen: set = set()
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict):
            fail(findings, path, f"{where}: not an object")
            continue
        name = m.get("name")
        if not isinstance(name, str) or not METRIC_NAME_RE.match(name):
            fail(findings, path, f"{where}: bad metric name {name!r}")
            continue
        labels = m.get("labels")
        if not isinstance(labels, dict):
            fail(findings, path, f"{where} ({name}): 'labels' must be an "
                 "object")
            labels = {}
        for k, v in labels.items():
            if not LABEL_KEY_RE.match(k):
                fail(findings, path, f"{where} ({name}): bad label key "
                     f"{k!r}")
            if not isinstance(v, str):
                fail(findings, path, f"{where} ({name}): label {k} value "
                     f"{v!r} is not a string")
        series = (name, tuple(sorted(labels.items())))
        if series in seen:
            fail(findings, path, f"{where}: duplicate series {series!r}")
        seen.add(series)
        kind = m.get("kind")
        if kind not in TELEMETRY_KINDS:
            fail(findings, path, f"{where} ({name}): kind {kind!r} not one "
                 f"of {sorted(TELEMETRY_KINDS)}")
            continue
        if kind == "counter":
            v = m.get("value")
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(findings, path, f"{where} ({name}): counter value "
                     f"{v!r} must be a non-negative integer")
        elif kind == "gauge":
            v = m.get("value")
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(findings, path, f"{where} ({name}): gauge value {v!r} "
                     "must be a number")
        else:  # histogram
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or \
                    len(buckets) != len(bounds) + 1:
                fail(findings, path, f"{where} ({name}): want "
                     f"{len(bounds) + 1} buckets (bounds + overflow), got "
                     f"{buckets!r}")
                continue
            total = 0
            ok = True
            for j, b in enumerate(buckets):
                if not isinstance(b, int) or isinstance(b, bool) or b < 0:
                    fail(findings, path, f"{where} ({name}): buckets[{j}] "
                         f"{b!r} must be a non-negative integer")
                    ok = False
                else:
                    total += b
            count = m.get("count")
            if ok and count != total:
                fail(findings, path, f"{where} ({name}): count {count!r} "
                     f"!= sum of buckets {total}")
            if not isinstance(m.get("sum"), (int, float)):
                fail(findings, path, f"{where} ({name}): missing numeric "
                     "'sum'")


# ------------------------------------------------------- prometheus text --

def parse_prom_labels(path: str, where: str, text: str,
                      findings: list) -> dict | None:
    """Parses `key="value",...` (no surrounding braces); None on error."""
    labels: dict = {}
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0 or eq + 1 >= len(text) or text[eq + 1] != '"':
            fail(findings, path, f"{where}: malformed labels {text!r}")
            return None
        key = text[i:eq]
        if not LABEL_KEY_RE.match(key):
            fail(findings, path, f"{where}: bad label key {key!r}")
            return None
        j = eq + 2
        value = []
        while j < len(text) and text[j] != '"':
            if text[j] == "\\":
                if j + 1 >= len(text) or text[j + 1] not in '\\"n':
                    fail(findings, path,
                         f"{where}: bad escape in label value {text!r}")
                    return None
                value.append({"\\": "\\", '"': '"', "n": "\n"}[text[j + 1]])
                j += 2
            else:
                value.append(text[j])
                j += 1
        if j >= len(text):
            fail(findings, path, f"{where}: unterminated label value in "
                 f"{text!r}")
            return None
        labels[key] = "".join(value)
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                fail(findings, path, f"{where}: expected ',' between "
                     f"labels in {text!r}")
                return None
            i += 1
    return labels


def parse_prom_text(path: str, text: str, findings: list):
    """Returns ({family: type}, [(name, labels, value)]) or None."""
    types: dict = {}
    samples: list = []
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(findings, path, f"{where}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in TELEMETRY_KINDS:
                    fail(findings, path, f"{where}: malformed TYPE {line!r}")
                elif parts[2] in types:
                    fail(findings, path,
                         f"{where}: duplicate TYPE for {parts[2]}")
                else:
                    types[parts[2]] = parts[3]
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.find("}", brace)
            if close < 0:
                fail(findings, path, f"{where}: unterminated labels "
                     f"{line!r}")
                continue
            name = line[:brace]
            labels = parse_prom_labels(path, where, line[brace + 1:close],
                                       findings)
            if labels is None:
                continue
            rest = line[close + 1:].strip()
        else:
            fields = line.split()
            if len(fields) != 2:
                fail(findings, path, f"{where}: want 'name value', got "
                     f"{line!r}")
                continue
            name, rest = fields[0], fields[1]
            labels = {}
        if not METRIC_NAME_RE.match(name):
            fail(findings, path, f"{where}: bad metric name {name!r}")
            continue
        try:
            value = float(rest)
        except ValueError:
            fail(findings, path, f"{where}: bad sample value {rest!r}")
            continue
        samples.append((name, labels, value))
    return types, samples


def family_of(name: str, types: dict) -> str:
    """Histogram samples use <family>_bucket/_sum/_count names."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[:-len(suffix)] in types:
            return name[:-len(suffix)]
    return name


def check_prom(path: str, text: str, findings: list,
               counters: dict | None = None) -> None:
    """Validates one exposition; `counters` carries {series: value} across
    successive scrapes for the monotonicity check."""
    parsed = parse_prom_text(path, text, findings)
    if parsed is None:
        return
    types, samples = parsed
    hist_buckets: dict = {}  # (family, labels-minus-le) -> [(le, cum)]
    hist_counts: dict = {}
    for name, labels, value in samples:
        family = family_of(name, types)
        ftype = types.get(family)
        if ftype is None:
            fail(findings, path, f"sample {name} has no TYPE declaration")
            continue
        series = (name, tuple(sorted(labels.items())))
        if ftype == "counter":
            if value < 0:
                fail(findings, path, f"counter {name} is negative: {value}")
            if counters is not None:
                prev = counters.get(series)
                if prev is not None and value < prev:
                    fail(findings, path,
                         f"counter {series!r} went backwards: {prev} -> "
                         f"{value}")
                counters[series] = value
        elif ftype == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                fail(findings, path, f"{name}{labels!r} lacks an le label")
                continue
            key = (family,
                   tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le")))
            hist_buckets.setdefault(key, []).append((labels["le"], value))
        elif ftype == "histogram" and name.endswith("_count"):
            hist_counts[(family, tuple(sorted(labels.items())))] = value
    for (family, labels), buckets in sorted(hist_buckets.items()):
        cum = [b for _, b in buckets]  # exposition order == ascending le
        if any(b < a for a, b in zip(cum, cum[1:])):
            fail(findings, path,
                 f"histogram {family}{dict(labels)!r} buckets are not "
                 "cumulative")
        les = [le for le, _ in buckets]
        if les.count("+Inf") != 1 or les[-1] != "+Inf":
            fail(findings, path,
                 f"histogram {family}{dict(labels)!r} must end with one "
                 'le="+Inf" bucket')
        elif (family, labels) not in hist_counts:
            fail(findings, path,
                 f"histogram {family}{dict(labels)!r} lacks a _count "
                 "sample")
        elif hist_counts[(family, labels)] != cum[-1]:
            fail(findings, path,
                 f"histogram {family}{dict(labels)!r} +Inf bucket "
                 f"{cum[-1]} != _count {hist_counts[(family, labels)]}")


# -------------------------------------------------------------- self-test --

GOOD_TRACE = {"traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
     "args": {"name": "run"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
     "args": {"name": "rank 0"}},
    {"name": "sigma", "cat": "sigma", "ph": "X", "pid": 0, "tid": 0,
     "ts": 0.0, "dur": 10.0},
    {"name": "beta_side", "cat": "phase", "ph": "X", "pid": 0, "tid": 0,
     "ts": 0.0, "dur": 4.0},
    {"name": "mixed", "cat": "phase", "ph": "X", "pid": 0, "tid": 0,
     "ts": 4.0, "dur": 6.0},
    {"name": "dlb_claim", "cat": "dlb", "ph": "i", "pid": 0, "tid": 0,
     "ts": 5.0, "s": "t"},
]}

BAD_TRACE_CROSSING = {"traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
     "args": {"name": "rank 0"}},
    {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 5.0},
    {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 3.0, "dur": 5.0},
]}

BAD_TRACE_NEGATIVE = {"traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
     "args": {"name": "rank 0"}},
    {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": -2.0},
]}

BAD_TRACE_UNNAMED = {"traceEvents": [
    {"name": "a", "ph": "X", "pid": 0, "tid": 7, "ts": 0.0, "dur": 1.0},
]}

GOOD_METRICS = {
    "schema": "xfci-metrics-v1", "run": "t", "backend": "sim",
    "algorithm": "dgemm", "num_ranks": 2, "num_workers": 2,
    "dimension": 100, "models_cost": True, "total_seconds": 1.0,
    "total_flops": 1e9,
    "phases": {k: 0.0 for k in PHASE_KEYS},
    "totals": {k: 0.0 for k in PHASE_KEYS},
    "comm": {"dlb_calls": 3, "ops_dropped": 0, "ops_delayed": 0},
    "recovery": {"tasks_reassigned": 0, "ops_retried": 0, "ranks_lost": 0},
    "ranks": [{"rank": 0}, {"rank": 1}],
    "env": [{"name": "XFCI_GEMM_KERNEL", "set": False}],
    "solver": {"converged": True, "iterations": 2, "energy": -1.0,
               "energy_history": [-0.9, -1.0],
               "residual_history": [0.1, 0.001]},
}

GOOD_BENCH = {
    "schema": "xfci-bench-v1", "bench": "fig4",
    "config": {"backend": "sim"},
    "rows": [{"msps": 16, "t": 1.0}, {"msps": 32, "t": 0.5}],
    "total_seconds": 1.5,
}


GOOD_TELEMETRY = {
    "schema": "xfci-telemetry-v1",
    "wall_unix_seconds": 1.7e9,
    "histogram_bounds": [0.001, 0.002, 0.004],
    "metrics": [
        {"name": "xfci_serve_jobs_completed_total", "kind": "counter",
         "help": "h", "labels": {"priority": "batch"}, "value": 3},
        {"name": "xfci_serve_jobs_completed_total", "kind": "counter",
         "help": "h", "labels": {"priority": "interactive"}, "value": 0},
        {"name": "xfci_serve_queue_depth", "kind": "gauge", "help": "h",
         "labels": {}, "value": 0.0},
        {"name": "xfci_serve_job_stage_seconds", "kind": "histogram",
         "help": "h", "labels": {"stage": "solve"},
         "buckets": [1, 2, 0, 1], "sum": 0.005, "count": 4},
    ],
}

GOOD_PROM = """\
# HELP xfci_serve_jobs_completed_total Jobs finished.
# TYPE xfci_serve_jobs_completed_total counter
xfci_serve_jobs_completed_total{priority="batch"} 3
xfci_serve_jobs_completed_total{priority="interactive"} 0
# HELP xfci_serve_queue_depth Jobs waiting.
# TYPE xfci_serve_queue_depth gauge
xfci_serve_queue_depth 0
# HELP xfci_serve_job_stage_seconds Latency.
# TYPE xfci_serve_job_stage_seconds histogram
xfci_serve_job_stage_seconds_bucket{stage="solve",le="0.001"} 1
xfci_serve_job_stage_seconds_bucket{stage="solve",le="0.002"} 3
xfci_serve_job_stage_seconds_bucket{stage="solve",le="+Inf"} 4
xfci_serve_job_stage_seconds_sum{stage="solve"} 0.005
xfci_serve_job_stage_seconds_count{stage="solve"} 4
"""

BAD_PROM_NONCUMULATIVE = GOOD_PROM.replace(
    'le="0.002"} 3', 'le="0.002"} 0')
BAD_PROM_COUNT = GOOD_PROM.replace("_count{stage=\"solve\"} 4",
                                   "_count{stage=\"solve\"} 5")
BAD_PROM_LABEL = GOOD_PROM.replace('priority="batch"', 'priority=batch')
BAD_PROM_UNDECLARED = "xfci_mystery_total 1\n"


GOOD_SERVE_CACHE = {"enabled": True, "hits": 2, "misses": 1,
                    "evictions": 0, "resident_bytes": 4096,
                    "resident_entries": 1}
GOOD_SERVE_JOBS = [{
    "id": 0, "name": "h2.fcidump", "state": "done", "priority": "batch",
    "cache_hit": False, "sequence": 1, "queue_seconds": 0.0,
    "setup_seconds": 0.01, "solve_seconds": 0.02, "total_seconds": 0.03,
    "energy": -1.1, "converged": True,
}]


def self_test() -> int:
    failures = []
    cases = 0

    def expect(name, checker, doc, want_findings, **kw):
        nonlocal cases
        cases += 1
        findings: list = []
        checker("<self-test>", doc, findings, **kw)
        if want_findings and not findings:
            failures.append(f"{name}: expected findings, got none")
        if not want_findings and findings:
            failures.append(f"{name}: unexpected findings {findings}")

    expect("good trace passes", check_trace, GOOD_TRACE, False)
    expect("crossing spans caught", check_trace, BAD_TRACE_CROSSING, True)
    expect("negative duration caught", check_trace, BAD_TRACE_NEGATIVE, True)
    expect("unlabelled track caught", check_trace, BAD_TRACE_UNNAMED, True)
    expect("missing expected span caught", check_trace, GOOD_TRACE, True,
           expect_spans=["no_such_span"])
    expect("expected span found", check_trace, GOOD_TRACE, False,
           expect_spans=["sigma", "beta_side"])

    expect("good metrics pass", check_metrics, GOOD_METRICS, False)
    bad = dict(GOOD_METRICS, schema="wrong")
    expect("wrong metrics schema caught", check_metrics, bad, True)
    bad = dict(GOOD_METRICS, ranks=[{"rank": 0}])
    expect("rank row mismatch caught", check_metrics, bad, True)
    bad = dict(GOOD_METRICS)
    del bad["phases"]
    expect("missing phases caught", check_metrics, bad, True)
    bad = dict(GOOD_METRICS)
    del bad["env"]
    expect("missing env section caught", check_metrics, bad, True)
    bad = dict(GOOD_METRICS, env=[{"name": "X"}])
    expect("malformed env row caught", check_metrics, bad, True)
    bad = dict(GOOD_METRICS, env=[{"name": "X", "set": True}])
    expect("set env row without value caught", check_metrics, bad, True)
    good = dict(GOOD_METRICS,
                env=[{"name": "X", "set": True, "value": "portable"}])
    expect("set env row with value passes", check_metrics, good, False)

    # serve::Engine extensions: cache statistics + per-job rows.
    good = dict(GOOD_METRICS, backend="serve", cache=GOOD_SERVE_CACHE,
                jobs=GOOD_SERVE_JOBS)
    expect("serve metrics with cache/jobs pass", check_metrics, good, False)
    bad = dict(good, cache=dict(GOOD_SERVE_CACHE, misses=-1))
    expect("negative cache count caught", check_metrics, bad, True)
    bad = dict(good, cache="warm")
    expect("non-object cache caught", check_metrics, bad, True)
    incomplete = {k: v for k, v in GOOD_SERVE_CACHE.items()
                  if k != "evictions"}
    bad = dict(good, cache=incomplete)
    expect("missing cache key caught", check_metrics, bad, True)
    bad = dict(good, jobs=[dict(GOOD_SERVE_JOBS[0], state="exploded")])
    expect("unknown job state caught", check_metrics, bad, True)
    bad = dict(good, jobs=[{k: v for k, v in GOOD_SERVE_JOBS[0].items()
                            if k != "sequence"}])
    expect("job row missing key caught", check_metrics, bad, True)
    bad = dict(good, jobs={"0": GOOD_SERVE_JOBS[0]})
    expect("non-array jobs caught", check_metrics, bad, True)

    # Telemetry snapshots (xfci-telemetry-v1).
    expect("good telemetry passes", check_telemetry, GOOD_TELEMETRY, False)
    bad = dict(GOOD_TELEMETRY, schema="wrong")
    expect("wrong telemetry schema caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, histogram_bounds=[0.002, 0.001, 0.004])
    expect("non-increasing bounds caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY,
               metrics=GOOD_TELEMETRY["metrics"][:1] * 2)
    expect("duplicate series caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, metrics=[
        dict(GOOD_TELEMETRY["metrics"][0], name="bad name!")])
    expect("bad metric name caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, metrics=[
        dict(GOOD_TELEMETRY["metrics"][0], value=-1)])
    expect("negative counter caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, metrics=[
        dict(GOOD_TELEMETRY["metrics"][0], value=2.5)])
    expect("non-integer counter caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, metrics=[
        dict(GOOD_TELEMETRY["metrics"][3], count=7)])
    expect("histogram count mismatch caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, metrics=[
        dict(GOOD_TELEMETRY["metrics"][3], buckets=[1, 2])])
    expect("short histogram caught", check_telemetry, bad, True)
    bad = dict(GOOD_TELEMETRY, metrics=[
        dict(GOOD_TELEMETRY["metrics"][0],
             labels={"le with space": "x"})])
    expect("bad label key caught", check_telemetry, bad, True)

    # Prometheus text exposition.
    expect("good prom passes", check_prom, GOOD_PROM, False)
    expect("non-cumulative buckets caught", check_prom,
           BAD_PROM_NONCUMULATIVE, True)
    expect("bucket/count mismatch caught", check_prom, BAD_PROM_COUNT, True)
    expect("unquoted label value caught", check_prom, BAD_PROM_LABEL, True)
    expect("undeclared family caught", check_prom, BAD_PROM_UNDECLARED,
           True)
    # Successive scrapes: a counter that goes backwards must be caught,
    # monotonic ones must pass.
    counters: dict = {}
    monotonic: list = []
    check_prom("<scrape 1>", GOOD_PROM, monotonic, counters=counters)
    check_prom("<scrape 2>",
               GOOD_PROM.replace('priority="batch"} 3',
                                 'priority="batch"} 5'),
               monotonic, counters=counters)
    cases += 1
    if monotonic:
        failures.append(f"monotonic scrapes: unexpected {monotonic}")
    regressed: list = []
    check_prom("<scrape 3>",
               GOOD_PROM.replace('priority="batch"} 3',
                                 'priority="batch"} 1'),
               regressed, counters=counters)
    cases += 1
    if not regressed:
        failures.append("backwards counter across scrapes not caught")

    expect("good bench passes", check_bench, GOOD_BENCH, False)
    bad = dict(GOOD_BENCH, rows=[])
    expect("empty bench rows caught", check_bench, bad, True)
    bad = dict(GOOD_BENCH, rows=[{"a": 1}, {"b": 2}])
    expect("inconsistent bench columns caught", check_bench, bad, True)
    bad = dict(GOOD_BENCH, total_seconds="fast")
    expect("non-numeric total_seconds caught", check_bench, bad, True)

    # End-to-end through temp files and the main() driver.
    with tempfile.TemporaryDirectory() as tmp:
        tp = os.path.join(tmp, "t.json")
        mp = os.path.join(tmp, "m.json")
        bp = os.path.join(tmp, "b.json")
        yp = os.path.join(tmp, "y.json")
        pp = os.path.join(tmp, "p.prom")
        for p, doc in ((tp, GOOD_TRACE), (mp, GOOD_METRICS),
                       (bp, GOOD_BENCH), (yp, GOOD_TELEMETRY)):
            with open(p, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        with open(pp, "w", encoding="utf-8") as fh:
            fh.write(GOOD_PROM)
        rc = run(["--trace", tp, "--metrics", mp, "--bench", bp,
                  "--telemetry", yp, "--prom", pp, "--prom", pp,
                  "--expect-spans", "sigma"])
        if rc != 0:
            failures.append(f"end-to-end valid files: exit {rc}, want 0")
        with open(tp, "w", encoding="utf-8") as fh:
            fh.write("not json")
        rc = run(["--trace", tp])
        if rc != 1:
            failures.append(f"end-to-end broken file: exit {rc}, want 1")

    if failures:
        print("check_trace self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print(f"check_trace self-test passed ({cases} cases).")
    return 0


# ------------------------------------------------------------------- main --

def run(argv: list) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", action="append", default=[],
                    help="Chrome-trace JSON file to validate")
    ap.add_argument("--metrics", action="append", default=[],
                    help="xfci-metrics-v1 run report to validate")
    ap.add_argument("--bench", action="append", default=[],
                    help="xfci-bench-v1 report to validate")
    ap.add_argument("--telemetry", action="append", default=[],
                    help="xfci-telemetry-v1 snapshot to validate")
    ap.add_argument("--prom", action="append", default=[],
                    help="Prometheus /metrics scrape to validate; several "
                         "are checked as successive scrapes (counters "
                         "must be monotonic)")
    ap.add_argument("--expect-spans", default="",
                    help="comma-separated span names every --trace file "
                         "must contain")
    ap.add_argument("--self-test", action="store_true",
                    help="run the validator's own seeded-document tests")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not (args.trace or args.metrics or args.bench or args.telemetry
            or args.prom):
        ap.print_usage(sys.stderr)
        return 2

    expect_spans = [s for s in args.expect_spans.split(",") if s]
    findings: list = []
    for path in args.trace:
        doc = load_json(path, findings)
        if doc is not None:
            check_trace(path, doc, findings, expect_spans=expect_spans)
    for path in args.metrics:
        doc = load_json(path, findings)
        if doc is not None:
            check_metrics(path, doc, findings)
    for path in args.bench:
        doc = load_json(path, findings)
        if doc is not None:
            check_bench(path, doc, findings)
    for path in args.telemetry:
        doc = load_json(path, findings)
        if doc is not None:
            check_telemetry(path, doc, findings)
    counters: dict = {}
    for path in args.prom:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            fail(findings, path, f"unreadable: {exc}")
            continue
        check_prom(path, text, findings, counters=counters)

    for f in findings:
        print(f)
    if findings:
        print(f"check_trace: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    nfiles = (len(args.trace) + len(args.metrics) + len(args.bench) +
              len(args.telemetry) + len(args.prom))
    print(f"check_trace: {nfiles} file(s) valid.")
    return 0


def main() -> int:
    return run(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
