#!/usr/bin/env python3
"""xfci repo linter: project rules the compiler does not enforce.

Rules
-----
raw-assert          No raw assert()/abort() in src/ — contract violations
                    must go through XFCI_REQUIRE/XFCI_ASSERT/XFCI_DCHECK so
                    they throw xfci::Error with file/line/expression context
                    instead of killing the process.
using-namespace     No `using namespace` at any scope in headers.
pragma-once         Every header starts with #pragma once.
entry-require       Public entry points in src/fci/, src/fci_parallel/ and
                    src/parallel/ (externally visible functions taking a
                    span/vector/Matrix/TaskPool argument) must validate
                    their inputs: a contract macro within the first
                    NEAR_TOP lines of the body.  Suppress intentionally
                    unchecked functions with `// lint: no-require` on the
                    signature line.
layering            The simulated machine is an implementation detail of the
                    DDI layer: outside src/parallel/ nothing may include
                    parallel/machine.hpp or name pv::Machine directly.
                    Application code (src/fci_parallel/, drivers, ...) talks
                    to pv::Ddi so every backend goes through one interface.
catch-swallow       No `catch (...)` that swallows the exception: the body
                    must rethrow (`throw;`), capture it for later
                    (`std::current_exception`/`std::rethrow_exception`), or
                    at minimum log it.  Silent catch-alls turn faults into
                    wrong answers — the recovery layer (DESIGN.md, "Failure
                    model") depends on errors surfacing.
timing              Raw clock reads (std::chrono, clock_gettime,
                    gettimeofday) are fenced inside src/common/timer.*,
                    src/common/trace.* and src/parallel/: everything else
                    times through Timer or a Ddi/Tracer clock so the
                    simulated backend stays deterministic and traces carry
                    one clock domain per backend (DESIGN.md §11).
simd                x86 intrinsics (<immintrin.h>, _mm*/__m* tokens) are
                    fenced inside the per-ISA micro-kernel TUs
                    (src/linalg/gemm_kernels_*): those are the only files
                    compiled with -m ISA flags, so an intrinsic anywhere
                    else either breaks the portable build or silently
                    requires the ISA everywhere (DESIGN.md §12).
self-contained      (--compile-headers) every header under src/ compiles as
                    its own translation unit.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

SRC_SUBDIRS_ENTRY = ("src/fci/", "src/fci_parallel/", "src/parallel/")
CONTRACT_MACROS = ("XFCI_REQUIRE", "XFCI_ASSERT", "XFCI_DCHECK")
SIZED_TYPES = re.compile(
    r"std::span|std::vector|Matrix\s*&|TaskPool\s*&|std::function")
NEAR_TOP = 14  # lines of body in which the first contract must appear
SUPPRESS = "lint: no-require"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines
    and column positions so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if ch in "\"'":
                mode = ch
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif mode == "line":
            if ch == "\n":
                mode = None
                out.append(ch)
            else:
                out.append(" ")
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        else:  # inside a literal
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == mode:
                mode = None
            out.append(ch if ch in (mode, "\n") else " ")
        i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_raw_assert(path: str, code: str, findings: list) -> None:
    for m in re.finditer(r"(?<![\w:])(assert|abort)\s*\(", code):
        if m.group(1) == "assert":
            # static_assert is fine; so is a member function named assert on
            # some object (none exist, but be precise about the token).
            before = code[: m.start()]
            if before.endswith("static_"):
                continue
        findings.append(
            Finding(path, line_of(code, m.start()), "raw-assert",
                    f"raw {m.group(1)}() — use XFCI_REQUIRE/XFCI_ASSERT/"
                    "XFCI_DCHECK (throws xfci::Error with context)"))
    for m in re.finditer(r"#\s*include\s*[<\"](cassert|assert\.h)[>\"]", code):
        findings.append(
            Finding(path, line_of(code, m.start()), "raw-assert",
                    f"<{m.group(1)}> include — contracts go through "
                    "common/error.hpp"))


def check_using_namespace(path: str, code: str, findings: list) -> None:
    for m in re.finditer(r"\busing\s+namespace\b", code):
        findings.append(
            Finding(path, line_of(code, m.start()), "using-namespace",
                    "`using namespace` in a header leaks into every "
                    "includer; use namespace aliases"))


def check_pragma_once(path: str, raw: str, findings: list) -> None:
    for lineno, line in enumerate(raw.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped != "#pragma once":
            findings.append(
                Finding(path, lineno, "pragma-once",
                        "header must start with #pragma once"))
        return
    findings.append(Finding(path, 1, "pragma-once", "empty header"))


def _body_extent(code: str, open_brace: int) -> int:
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def _anonymous_regions(code: str):
    """[start, end) character ranges covered by anonymous namespaces."""
    regions = []
    for m in re.finditer(r"\bnamespace\s*\{", code):
        open_brace = code.index("{", m.start())
        regions.append((open_brace, _body_extent(code, open_brace) + 1))
    return regions


def check_entry_require(path: str, raw: str, code: str,
                        findings: list) -> None:
    anon = _anonymous_regions(code)
    raw_lines = raw.splitlines()
    # A function definition: `)` [cv/ref/noexcept/ctor-init junk] `{` where
    # the signature back to the previous statement boundary has a parameter
    # list.  clang-formatted code keeps this shape reliable.
    for m in re.finditer(r"\)[^;{}()]*\{", code):
        open_brace = code.index("{", m.start())
        if any(a <= open_brace < b for a, b in anon):
            continue
        # Signature: back from the matching '(' of this ')' to the previous
        # ';', '}' or '{'.
        close_paren = m.start()
        depth = 0
        sig_open = -1
        for i in range(close_paren, -1, -1):
            if code[i] == ")":
                depth += 1
            elif code[i] == "(":
                depth -= 1
                if depth == 0:
                    sig_open = i
                    break
        if sig_open <= 0:
            continue
        head_start = max(code.rfind(";", 0, sig_open),
                         code.rfind("}", 0, sig_open),
                         code.rfind("{", 0, sig_open)) + 1
        head = code[head_start:sig_open]
        params = code[sig_open + 1:close_paren]
        name_m = re.search(r"([\w:~]+)\s*$", head)
        if not name_m:
            continue
        name = name_m.group(1)
        last = name.split("::")[-1]
        if last in ("if", "for", "while", "switch", "catch", "return",
                    "sizeof", "defined"):
            continue
        if re.search(r"\b(static|inline)\b", head):
            continue
        if "[" in head.split("\n")[-1]:  # lambda introducer
            continue
        if not SIZED_TYPES.search(params):
            continue
        sig_line = line_of(code, sig_open)
        brace_line = line_of(code, open_brace)
        if any(SUPPRESS in raw_lines[ln - 1]
               for ln in range(sig_line, brace_line + 1)
               if 0 < ln <= len(raw_lines)):
            continue
        body = code[open_brace:_body_extent(code, open_brace)]
        near_top = "\n".join(body.splitlines()[:NEAR_TOP])
        if not any(macro in near_top for macro in CONTRACT_MACROS):
            findings.append(
                Finding(path, sig_line, "entry-require",
                        f"public entry point `{name}` takes sized arguments "
                        "but has no XFCI_REQUIRE/ASSERT/DCHECK near the top "
                        f"of its body (first {NEAR_TOP} lines); add a size "
                        f"check or suppress with `// {SUPPRESS}`"))


LAYERING_EXEMPT = "src/parallel/"
MACHINE_INCLUDE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*"parallel/machine\.hpp"', re.MULTILINE)
MACHINE_TOKEN = re.compile(r"\bpv::Machine\b")


def check_layering(path: str, raw: str, code: str, findings: list) -> None:
    """Machine is private to the DDI layer (DESIGN.md, 'Layering')."""
    if path.replace(os.sep, "/").startswith(LAYERING_EXEMPT):
        return
    for m in MACHINE_INCLUDE.finditer(raw):
        findings.append(
            Finding(path, line_of(raw, m.start()), "layering",
                    "parallel/machine.hpp is private to src/parallel/; "
                    "include parallel/ddi.hpp and use pv::Ddi"))
    for m in MACHINE_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "layering",
                    "direct pv::Machine use outside src/parallel/; go "
                    "through the pv::Ddi interface"))


HANDLES_EXCEPTION = re.compile(
    r"\bthrow\b|\brethrow_exception\b|\bcurrent_exception\b|"
    r"\bcerr\b|\bclog\b|\bfprintf\b|\blog\w*\s*\(")


def check_catch_swallow(path: str, code: str, findings: list) -> None:
    for m in re.finditer(r"\bcatch\s*\(\s*\.\.\.\s*\)\s*\{", code):
        open_brace = code.index("{", m.end() - 1)
        body = code[open_brace:_body_extent(code, open_brace) + 1]
        if HANDLES_EXCEPTION.search(body):
            continue
        findings.append(
            Finding(path, line_of(code, m.start()), "catch-swallow",
                    "`catch (...)` swallows the exception; rethrow, store "
                    "std::current_exception(), or log before continuing"))


TIMING_ALLOWED = ("src/common/timer.", "src/common/trace.", "src/parallel/")
TIMING_TOKEN = re.compile(
    r"\bstd::chrono\b|\bclock_gettime\b|\bgettimeofday\b|"
    r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b")


def check_timing(path: str, code: str, findings: list) -> None:
    """Clock reads live in the timing layer (DESIGN.md §11)."""
    norm = path.replace(os.sep, "/")
    if any(norm.startswith(p) for p in TIMING_ALLOWED):
        return
    for m in TIMING_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "timing",
                    f"raw clock read `{m.group(0)}` outside the timing "
                    "layer; use xfci::Timer or the Ddi/Tracer clock so "
                    "simulated runs stay deterministic"))


SIMD_ALLOWED = "src/linalg/gemm_kernels_"
SIMD_INCLUDE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*[<"]((?:x86|imm|avx\w*)intrin\.h)[>"]',
    re.MULTILINE)
SIMD_TOKEN = re.compile(r"\b(_mm\d*_\w+|__m\d+[di]?)\b")


def check_simd(path: str, raw: str, code: str, findings: list) -> None:
    """Intrinsics live in the dispatched micro-kernel TUs (DESIGN.md §12)."""
    if path.replace(os.sep, "/").startswith(SIMD_ALLOWED):
        return
    for m in SIMD_INCLUDE.finditer(raw):
        findings.append(
            Finding(path, line_of(raw, m.start()), "simd",
                    f"<{m.group(1)}> include outside "
                    "src/linalg/gemm_kernels_*; only those TUs get -m ISA "
                    "flags and a runtime cpuid gate"))
    for m in SIMD_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "simd",
                    f"x86 intrinsic `{m.group(0)}` outside "
                    "src/linalg/gemm_kernels_*; add a dispatched kernel "
                    "variant instead"))


def lint_tree(root: str) -> list:
    findings = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if not fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as fh:
                raw = fh.read()
            code = strip_comments_and_strings(raw)
            check_raw_assert(rel, code, findings)
            check_catch_swallow(rel, code, findings)
            check_layering(rel, raw, code, findings)
            check_timing(rel, code, findings)
            check_simd(rel, raw, code, findings)
            if fn.endswith((".hpp", ".h")):
                check_using_namespace(rel, code, findings)
                check_pragma_once(rel, raw, findings)
            if any(rel.startswith(d) for d in SRC_SUBDIRS_ENTRY) and \
               fn.endswith((".cpp", ".cc")):
                check_entry_require(rel, raw, code, findings)
    return findings


def compile_headers(root: str, cxx: str) -> list:
    findings = []
    src = os.path.join(root, "src")
    headers = []
    for dirpath, _dirnames, filenames in os.walk(src):
        headers += [os.path.join(dirpath, f) for f in filenames
                    if f.endswith((".hpp", ".h"))]
    for path in sorted(headers):
        rel = os.path.relpath(path, src)
        proc = subprocess.run(
            [cxx, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
             "-I", src, "-x", "c++", "-"],
            input=f'#include "{rel}"\n',
            capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            first = proc.stderr.strip().splitlines()
            findings.append(
                Finding(os.path.relpath(path, root), 1, "self-contained",
                        "header does not compile standalone: " +
                        (first[0] if first else "unknown error")))
    return findings


# --------------------------------------------------------------- self-test --

GOOD_CPP = """\
#include "common/error.hpp"
namespace xfci::fci {
void apply_block(std::span<const double> c) {
  XFCI_REQUIRE(!c.empty(), "empty block");
}
void helper(std::vector<double>& v) {  // lint: no-require
  v.clear();
}
}  // namespace xfci::fci
"""

BAD_ASSERT_CPP = """\
#include <cassert>
namespace xfci::fci {
void f(int x) { assert(x > 0); }
void g() { abort(); }
}  // namespace xfci::fci
"""

BAD_HEADER = """\
#pragma once
using namespace std;
"""

BAD_NO_PRAGMA = """\
#ifndef GUARD_H
#define GUARD_H
#endif
"""

BAD_CATCH_CPP = """\
namespace xfci::fci {
void f() {
  try {
    g();
  } catch (...) {
  }
}
}  // namespace xfci::fci
"""

GOOD_CATCH_CPP = """\
#include <exception>
namespace xfci::fci {
void f(std::exception_ptr& err) {
  try {
    g();
  } catch (...) {
    if (!err) err = std::current_exception();
  }
  try {
    h();
  } catch (...) {
    throw;
  }
}
}  // namespace xfci::fci
"""

BAD_LAYER_CPP = """\
#include "parallel/machine.hpp"
namespace xfci::fcp {
void f() { pv::Machine m(4); (void)m; }
}  // namespace xfci::fcp
"""

GOOD_LAYER_CPP = """\
// The simulated pv::Machine (parallel/machine.hpp) backs this path -- a
// comment mention must not trip the layering rule.
#include "parallel/ddi.hpp"
namespace xfci::fcp {
void f() {}
}  // namespace xfci::fcp
"""

BAD_TIMING_CPP = """\
#include <chrono>
namespace xfci::fci {
double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace xfci::fci
"""

BAD_SIMD_CPP = """\
#include <immintrin.h>
namespace xfci::fci {
double hsum(__m256d v) {
  return _mm256_cvtsd_f64(v);
}
}  // namespace xfci::fci
"""

BAD_ENTRY_CPP = """\
#include "common/error.hpp"
namespace xfci::fci {
void unchecked_entry(std::span<const double> c, std::span<double> s) {
  for (std::size_t i = 0; i < c.size(); ++i) s[i] = c[i];
}
}  // namespace xfci::fci
"""


def self_test() -> int:
    failures = []

    def expect(name, filename, content, rule, want, subdir="fci"):
        with tempfile.TemporaryDirectory() as tmp:
            subdir = os.path.join(tmp, "src", subdir)
            os.makedirs(subdir)
            with open(os.path.join(subdir, filename), "w",
                      encoding="utf-8") as fh:
                fh.write(content)
            found = lint_tree(tmp)
            hit = [f for f in found if f.rule == rule]
            if want and not hit:
                failures.append(f"{name}: expected a {rule} finding, got "
                                f"{[str(f) for f in found]}")
            if not want and hit:
                failures.append(f"{name}: unexpected {rule} findings "
                                f"{[str(f) for f in hit]}")

    expect("seeded raw assert", "bad_assert.cpp", BAD_ASSERT_CPP,
           "raw-assert", True)
    expect("seeded using-namespace header", "bad.hpp", BAD_HEADER,
           "using-namespace", True)
    expect("seeded missing pragma once", "bad_guard.hpp", BAD_NO_PRAGMA,
           "pragma-once", True)
    expect("seeded unchecked entry point", "bad_entry.cpp", BAD_ENTRY_CPP,
           "entry-require", True)
    expect("checked entry point passes", "good.cpp", GOOD_CPP,
           "entry-require", False)
    expect("checked entry point no assert", "good.cpp", GOOD_CPP,
           "raw-assert", False)
    # static_assert must not trip the raw-assert rule.
    expect("static_assert allowed", "sa.cpp",
           "static_assert(1 + 1 == 2);\n", "raw-assert", False)
    # Commented-out assert must not trip it either.
    expect("commented assert allowed", "ca.cpp",
           "// assert(false) would be wrong here\n", "raw-assert", False)
    expect("seeded swallowing catch-all", "bad_catch.cpp", BAD_CATCH_CPP,
           "catch-swallow", True)
    expect("storing/rethrowing catch-all passes", "good_catch.cpp",
           GOOD_CATCH_CPP, "catch-swallow", False)
    expect("seeded machine use outside src/parallel", "bad_layer.cpp",
           BAD_LAYER_CPP, "layering", True)
    expect("comment mention of machine allowed", "good_layer.cpp",
           GOOD_LAYER_CPP, "layering", False)
    expect("seeded raw clock read", "bad_clock.cpp", BAD_TIMING_CPP,
           "timing", True)
    expect("clock read allowed in src/parallel", "backend_clock.cpp",
           BAD_TIMING_CPP, "timing", False, subdir="parallel")
    expect("clock read allowed in the timer", "timer.hpp",
           "#pragma once\n" + BAD_TIMING_CPP, "timing", False,
           subdir="common")
    expect("comment mention of chrono allowed", "good_clock.cpp",
           "// std::chrono stays behind xfci::Timer\nvoid f();\n",
           "timing", False)
    expect("seeded intrinsics outside the kernel TUs", "bad_simd.cpp",
           BAD_SIMD_CPP, "simd", True)
    expect("intrinsics allowed in a kernel TU", "gemm_kernels_avx9.cpp",
           BAD_SIMD_CPP, "simd", False, subdir="linalg")
    expect("comment mention of intrinsics allowed", "good_simd.cpp",
           "// the avx512 kernel uses _mm512_fmadd_pd\nvoid f();\n",
           "simd", False)

    if failures:
        print("xfci_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("xfci_lint self-test passed (19 cases).")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--compile-headers", action="store_true",
                    help="also compile every header standalone")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                    help="compiler for --compile-headers")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter's own seeded-violation tests")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"xfci_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = lint_tree(root)
    if args.compile_headers:
        findings += compile_headers(root, args.cxx)

    for f in findings:
        print(f)
    if findings:
        print(f"xfci_lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("xfci_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
