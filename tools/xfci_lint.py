#!/usr/bin/env python3
"""xfci repo linter: project rules the compiler does not enforce.

Rules
-----
raw-assert          No raw assert()/abort() in src/ — contract violations
                    must go through XFCI_REQUIRE/XFCI_ASSERT/XFCI_DCHECK so
                    they throw xfci::Error with file/line/expression context
                    instead of killing the process.
using-namespace     No `using namespace` at any scope in headers.
pragma-once         Every header starts with #pragma once.
entry-require       Public entry points in src/fci/, src/fci_parallel/ and
                    src/parallel/ (externally visible functions taking a
                    span/vector/Matrix/TaskPool argument) must validate
                    their inputs: a contract macro within the first
                    NEAR_TOP lines of the body.  Suppress intentionally
                    unchecked functions with `// lint: no-require` on the
                    signature line.
layering            The simulated machine is an implementation detail of the
                    DDI layer: outside src/parallel/ nothing may include
                    parallel/machine.hpp or name pv::Machine directly.
                    Application code (src/fci_parallel/, drivers, ...) talks
                    to pv::Ddi so every backend goes through one interface.
serve-layering      The serve layer sits *on top of* the solve pipeline
                    (DESIGN.md §15): src/serve/ may include fci/ and
                    fci_parallel/ headers, but nothing under src/ outside
                    src/serve/ may include a serve/ header.  The core
                    libraries must stay linkable without the job engine.
catch-swallow       No `catch (...)` that swallows the exception: the body
                    must rethrow (`throw;`), capture it for later
                    (`std::current_exception`/`std::rethrow_exception`), or
                    at minimum log it.  Silent catch-alls turn faults into
                    wrong answers — the recovery layer (DESIGN.md, "Failure
                    model") depends on errors surfacing.
timing              Raw clock reads (std::chrono, clock_gettime,
                    gettimeofday) are fenced inside src/common/timer.*,
                    src/common/trace.* and src/parallel/: everything else
                    times through Timer or a Ddi/Tracer clock so the
                    simulated backend stays deterministic and traces carry
                    one clock domain per backend (DESIGN.md §11).
simd                x86 intrinsics (<immintrin.h>, _mm*/__m* tokens) are
                    fenced inside the per-ISA micro-kernel TUs
                    (src/linalg/gemm_kernels_*): those are the only files
                    compiled with -m ISA flags, so an intrinsic anywhere
                    else either breaks the portable build or silently
                    requires the ISA everywhere (DESIGN.md §12).
lock-annotations    Lock discipline is compiler-checked (DESIGN.md §13):
                    no raw std::mutex / std::condition_variable members
                    outside src/common/sync.hpp — concurrency code uses the
                    annotated xfci::sync wrappers; every sync::Mutex member
                    must be named by at least one XFCI_GUARDED_BY /
                    XFCI_PT_GUARDED_BY / XFCI_REQUIRES / XFCI_ACQUIRE in the
                    same file (a capability nothing is guarded by is a lie);
                    and every XFCI_NO_THREAD_SAFETY_ANALYSIS carries a
                    `justification:` comment on the same line or in the
                    comment block directly above it.
determinism         No std::unordered_{map,set,multimap,multiset} in src/ —
                    their iteration order is hash-seed dependent, and the
                    paper claims bitwise-reproducible outputs, so anything
                    that could feed an accumulation, checkpoint or report
                    must iterate deterministically (std::map/sorted vector).
                    Escape a genuinely order-free use with
                    `// lint: unordered-ok`.
include-cycles      The quoted-include graph over src/ headers must be a
                    DAG; a cycle is reported with its full path.
env-read            Raw environment access (getenv/setenv/...) is fenced
                    inside src/common/env.*: everything else goes through
                    xfci::env::get() so every consulted variable is recorded
                    and surfaced in the run report (--metrics).
telemetry           Metric registration goes through the constants in
                    src/common/metric_names.hpp: a counter(/gauge(/
                    histogram( call whose first argument is a string
                    literal is rejected everywhere else, so the full
                    metric surface is greppable in one header and names
                    cannot drift between the Prometheus exposition and
                    the xfci-telemetry-v1 snapshot (DESIGN.md §16).
suppression-budget  The repo-wide suppression counts (NOLINT,
                    XFCI_NO_THREAD_SAFETY_ANALYSIS, `lint:` escapes) must
                    equal the budget in .lint-budget: growth fails until the
                    budget is raised in the same change (reviewable), and a
                    slack budget fails until ratcheted down.
self-contained      (--compile-headers) every header under src/ compiles as
                    its own translation unit.

--fix rewrites what is mechanical: inserts a missing #pragma once and
inserts a justification stub above a bare XFCI_NO_THREAD_SAFETY_ANALYSIS.
By default it prints a unified diff and exits 1 if fixes are pending;
--apply writes the files.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import difflib
import os
import re
import subprocess
import sys
import tempfile

SRC_SUBDIRS_ENTRY = ("src/fci/", "src/fci_parallel/", "src/parallel/")
CONTRACT_MACROS = ("XFCI_REQUIRE", "XFCI_ASSERT", "XFCI_DCHECK")
SIZED_TYPES = re.compile(
    r"std::span|std::vector|Matrix\s*&|TaskPool\s*&|std::function")
NEAR_TOP = 14  # lines of body in which the first contract must appear
SUPPRESS = "lint: no-require"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines
    and column positions so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if ch in "\"'":
                mode = ch
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif mode == "line":
            if ch == "\n":
                mode = None
                out.append(ch)
            else:
                out.append(" ")
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        else:  # inside a literal
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == mode:
                mode = None
            out.append(ch if ch in (mode, "\n") else " ")
        i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_raw_assert(path: str, code: str, findings: list) -> None:
    for m in re.finditer(r"(?<![\w:])(assert|abort)\s*\(", code):
        if m.group(1) == "assert":
            # static_assert is fine; so is a member function named assert on
            # some object (none exist, but be precise about the token).
            before = code[: m.start()]
            if before.endswith("static_"):
                continue
        findings.append(
            Finding(path, line_of(code, m.start()), "raw-assert",
                    f"raw {m.group(1)}() — use XFCI_REQUIRE/XFCI_ASSERT/"
                    "XFCI_DCHECK (throws xfci::Error with context)"))
    for m in re.finditer(r"#\s*include\s*[<\"](cassert|assert\.h)[>\"]", code):
        findings.append(
            Finding(path, line_of(code, m.start()), "raw-assert",
                    f"<{m.group(1)}> include — contracts go through "
                    "common/error.hpp"))


def check_using_namespace(path: str, code: str, findings: list) -> None:
    for m in re.finditer(r"\busing\s+namespace\b", code):
        findings.append(
            Finding(path, line_of(code, m.start()), "using-namespace",
                    "`using namespace` in a header leaks into every "
                    "includer; use namespace aliases"))


def check_pragma_once(path: str, raw: str, findings: list) -> None:
    for lineno, line in enumerate(raw.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped != "#pragma once":
            findings.append(
                Finding(path, lineno, "pragma-once",
                        "header must start with #pragma once"))
        return
    findings.append(Finding(path, 1, "pragma-once", "empty header"))


def _body_extent(code: str, open_brace: int) -> int:
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def _anonymous_regions(code: str):
    """[start, end) character ranges covered by anonymous namespaces."""
    regions = []
    for m in re.finditer(r"\bnamespace\s*\{", code):
        open_brace = code.index("{", m.start())
        regions.append((open_brace, _body_extent(code, open_brace) + 1))
    return regions


def check_entry_require(path: str, raw: str, code: str,
                        findings: list) -> None:
    anon = _anonymous_regions(code)
    raw_lines = raw.splitlines()
    # A function definition: `)` [cv/ref/noexcept/ctor-init junk] `{` where
    # the signature back to the previous statement boundary has a parameter
    # list.  clang-formatted code keeps this shape reliable.
    for m in re.finditer(r"\)[^;{}()]*\{", code):
        open_brace = code.index("{", m.start())
        if any(a <= open_brace < b for a, b in anon):
            continue
        # Signature: back from the matching '(' of this ')' to the previous
        # ';', '}' or '{'.
        close_paren = m.start()
        depth = 0
        sig_open = -1
        for i in range(close_paren, -1, -1):
            if code[i] == ")":
                depth += 1
            elif code[i] == "(":
                depth -= 1
                if depth == 0:
                    sig_open = i
                    break
        if sig_open <= 0:
            continue
        head_start = max(code.rfind(";", 0, sig_open),
                         code.rfind("}", 0, sig_open),
                         code.rfind("{", 0, sig_open)) + 1
        head = code[head_start:sig_open]
        params = code[sig_open + 1:close_paren]
        name_m = re.search(r"([\w:~]+)\s*$", head)
        if not name_m:
            continue
        name = name_m.group(1)
        last = name.split("::")[-1]
        if last in ("if", "for", "while", "switch", "catch", "return",
                    "sizeof", "defined"):
            continue
        if re.search(r"\b(static|inline)\b", head):
            continue
        if "[" in head.split("\n")[-1]:  # lambda introducer
            continue
        if not SIZED_TYPES.search(params):
            continue
        sig_line = line_of(code, sig_open)
        brace_line = line_of(code, open_brace)
        if any(SUPPRESS in raw_lines[ln - 1]
               for ln in range(sig_line, brace_line + 1)
               if 0 < ln <= len(raw_lines)):
            continue
        body = code[open_brace:_body_extent(code, open_brace)]
        near_top = "\n".join(body.splitlines()[:NEAR_TOP])
        if not any(macro in near_top for macro in CONTRACT_MACROS):
            findings.append(
                Finding(path, sig_line, "entry-require",
                        f"public entry point `{name}` takes sized arguments "
                        "but has no XFCI_REQUIRE/ASSERT/DCHECK near the top "
                        f"of its body (first {NEAR_TOP} lines); add a size "
                        f"check or suppress with `// {SUPPRESS}`"))


LAYERING_EXEMPT = "src/parallel/"
MACHINE_INCLUDE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*"parallel/machine\.hpp"', re.MULTILINE)
MACHINE_TOKEN = re.compile(r"\bpv::Machine\b")


def check_layering(path: str, raw: str, code: str, findings: list) -> None:
    """Machine is private to the DDI layer (DESIGN.md, 'Layering')."""
    if path.replace(os.sep, "/").startswith(LAYERING_EXEMPT):
        return
    for m in MACHINE_INCLUDE.finditer(raw):
        findings.append(
            Finding(path, line_of(raw, m.start()), "layering",
                    "parallel/machine.hpp is private to src/parallel/; "
                    "include parallel/ddi.hpp and use pv::Ddi"))
    for m in MACHINE_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "layering",
                    "direct pv::Machine use outside src/parallel/; go "
                    "through the pv::Ddi interface"))


SERVE_LAYER = "src/serve/"
SERVE_INCLUDE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*"(serve/[^"]+)"', re.MULTILINE)


def check_serve_layering(path: str, raw: str, findings: list) -> None:
    """serve/ depends on the solve pipeline, never the reverse
    (DESIGN.md §15)."""
    if path.replace(os.sep, "/").startswith(SERVE_LAYER):
        return
    for m in SERVE_INCLUDE.finditer(raw):
        findings.append(
            Finding(path, line_of(raw, m.start()), "serve-layering",
                    f'include of "{m.group(1)}" outside src/serve/; the '
                    "solve pipeline must not depend on the job engine — "
                    "drivers link xfci_serve, core libraries never do"))


# Raw process/shared-memory syscalls are fenced inside the two ipc files of
# the DDI layer (shm_ipc.* and process_ddi.*), the same way pv::Machine is
# fenced inside src/parallel/: everything else talks to pv::Ddi and stays
# portable and fork-free (a stray fork() under a live ThreadTeam, or an
# unmanaged shm_open, is exactly the class of bug the ProcessDdi design
# confines — see DESIGN.md §14).
IPC_ALLOWED = ("src/parallel/shm_ipc.", "src/parallel/process_ddi.")
IPC_TOKEN = re.compile(
    r"\b(fork|vfork|shm_open|shm_unlink|mmap|munmap|ftruncate|waitpid|"
    r"prctl|kill|sigaction)\s*\(")


def check_ipc_fence(path: str, code: str, findings: list) -> None:
    """Raw ipc syscalls live in the process-backend files (DESIGN.md §14)."""
    norm = path.replace(os.sep, "/")
    if any(norm.startswith(p) for p in IPC_ALLOWED):
        return
    for m in IPC_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "ipc-fence",
                    f"raw ipc syscall `{m.group(1)}` outside "
                    "src/parallel/{shm_ipc,process_ddi}.*; processes and "
                    "shared memory are owned by the ProcessDdi backend — "
                    "use pv::Ddi / parallel/shm_ipc.hpp"))


HANDLES_EXCEPTION = re.compile(
    r"\bthrow\b|\brethrow_exception\b|\bcurrent_exception\b|"
    r"\bcerr\b|\bclog\b|\bfprintf\b|\blog\w*\s*\(")


def check_catch_swallow(path: str, code: str, findings: list) -> None:
    for m in re.finditer(r"\bcatch\s*\(\s*\.\.\.\s*\)\s*\{", code):
        open_brace = code.index("{", m.end() - 1)
        body = code[open_brace:_body_extent(code, open_brace) + 1]
        if HANDLES_EXCEPTION.search(body):
            continue
        findings.append(
            Finding(path, line_of(code, m.start()), "catch-swallow",
                    "`catch (...)` swallows the exception; rethrow, store "
                    "std::current_exception(), or log before continuing"))


TIMING_ALLOWED = ("src/common/timer.", "src/common/trace.", "src/parallel/")
TIMING_TOKEN = re.compile(
    r"\bstd::chrono\b|\bclock_gettime\b|\bgettimeofday\b|"
    r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b")


def check_timing(path: str, code: str, findings: list) -> None:
    """Clock reads live in the timing layer (DESIGN.md §11)."""
    norm = path.replace(os.sep, "/")
    if any(norm.startswith(p) for p in TIMING_ALLOWED):
        return
    for m in TIMING_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "timing",
                    f"raw clock read `{m.group(0)}` outside the timing "
                    "layer; use xfci::Timer or the Ddi/Tracer clock so "
                    "simulated runs stay deterministic"))


SIMD_ALLOWED = "src/linalg/gemm_kernels_"
SIMD_INCLUDE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*[<"]((?:x86|imm|avx\w*)intrin\.h)[>"]',
    re.MULTILINE)
SIMD_TOKEN = re.compile(r"\b(_mm\d*_\w+|__m\d+[di]?)\b")


def check_simd(path: str, raw: str, code: str, findings: list) -> None:
    """Intrinsics live in the dispatched micro-kernel TUs (DESIGN.md §12)."""
    if path.replace(os.sep, "/").startswith(SIMD_ALLOWED):
        return
    for m in SIMD_INCLUDE.finditer(raw):
        findings.append(
            Finding(path, line_of(raw, m.start()), "simd",
                    f"<{m.group(1)}> include outside "
                    "src/linalg/gemm_kernels_*; only those TUs get -m ISA "
                    "flags and a runtime cpuid gate"))
    for m in SIMD_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "simd",
                    f"x86 intrinsic `{m.group(0)}` outside "
                    "src/linalg/gemm_kernels_*; add a dispatched kernel "
                    "variant instead"))


# The only file allowed to hold raw standard-library lock primitives: the
# annotated wrappers themselves (DESIGN.md §13).
SYNC_WRAPPER = "src/common/sync.hpp"
# The macro definitions; the suppression token legitimately appears here.
ANNOTATIONS_HEADER = "src/common/annotations.hpp"
RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\b")
SYNC_MUTEX_MEMBER = re.compile(r"\bsync::Mutex\s+(\w+)\s*;")
TSA_ANNOTATION = re.compile(
    r"\bXFCI_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES(?:_SHARED)?|"
    r"ACQUIRE|RELEASE|TRY_ACQUIRE|EXCLUDES|RETURN_CAPABILITY)\s*\(([^()]*)\)")
TSA_SUPPRESS = "XFCI_NO_THREAD_SAFETY_ANALYSIS"
JUSTIFICATION = "justification:"


def _has_justification(raw_lines: list, lineno: int) -> bool:
    """True if raw line `lineno` (1-based) carries a `justification:`
    comment, either trailing on the line itself or in the contiguous
    //-comment block directly above it."""
    if JUSTIFICATION in raw_lines[lineno - 1]:
        return True
    i = lineno - 2
    while i >= 0 and raw_lines[i].lstrip().startswith("//"):
        if JUSTIFICATION in raw_lines[i]:
            return True
        i -= 1
    return False


def check_lock_annotations(path: str, raw: str, code: str,
                           findings: list) -> None:
    """Compiler-checked lock discipline (DESIGN.md §13)."""
    norm = path.replace(os.sep, "/")
    raw_lines = raw.splitlines()
    if norm != SYNC_WRAPPER:
        for m in RAW_PRIMITIVE.finditer(code):
            findings.append(
                Finding(path, line_of(code, m.start()), "lock-annotations",
                        f"raw {m.group(0)} outside common/sync.hpp; use the "
                        "annotated xfci::sync wrappers so Clang "
                        "-Wthread-safety can prove the lock discipline"))
    # Every sync::Mutex member must actually guard something: collect the
    # identifiers named inside XFCI_* annotation arguments in this file and
    # require each declared capability to appear among them.
    annotated = set()
    for m in TSA_ANNOTATION.finditer(code):
        annotated.update(re.findall(r"\w+", m.group(1)))
    for m in SYNC_MUTEX_MEMBER.finditer(code):
        name = m.group(1)
        if name not in annotated:
            findings.append(
                Finding(path, line_of(code, m.start()), "lock-annotations",
                        f"sync::Mutex member `{name}` is never named by an "
                        "XFCI_GUARDED_BY/PT_GUARDED_BY/REQUIRES/ACQUIRE "
                        "annotation in this file; declare what it protects"))
    if norm == ANNOTATIONS_HEADER:
        return  # the macro's own definition site
    for m in re.finditer(r"\b%s\b" % TSA_SUPPRESS, code):
        lineno = line_of(code, m.start())
        if not _has_justification(raw_lines, lineno):
            findings.append(
                Finding(path, lineno, "lock-annotations",
                        f"{TSA_SUPPRESS} without a `{JUSTIFICATION}` comment "
                        "on the same line or directly above; every analysis "
                        "hole must say why it is sound (or run --fix for a "
                        "stub)"))


UNORDERED = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
UNORDERED_OK = "lint: unordered-ok"


def check_determinism(path: str, raw: str, code: str, findings: list) -> None:
    """Hash containers iterate in a seed-dependent order; the paper claims
    bitwise-reproducible outputs (DESIGN.md §13)."""
    raw_lines = raw.splitlines()
    for m in UNORDERED.finditer(code):
        lineno = line_of(code, m.start())
        if UNORDERED_OK in raw_lines[lineno - 1]:
            continue
        findings.append(
            Finding(path, lineno, "determinism",
                    f"std::unordered_{m.group(1)} iterates in hash order — "
                    "outputs must be bitwise reproducible; use std::map / a "
                    f"sorted vector, or escape with `// {UNORDERED_OK}` if "
                    "no iteration feeds an output"))


ENV_ALLOWED = "src/common/env."
ENV_TOKEN = re.compile(
    r"\b(?:std::)?(getenv|secure_getenv|setenv|putenv|unsetenv)\s*\(")

TELEMETRY_ALLOWED = "src/common/metric_names.hpp"
# Registration with a quoted first argument.  strip_comments_and_strings
# keeps the opening quote (only string *contents* are blanked), so this
# matches real calls but not comment mentions.
TELEMETRY_TOKEN = re.compile(r"\b(counter|gauge|histogram)\s*\(\s*\"")


def check_telemetry_names(path: str, code: str, findings: list) -> None:
    """Metric names live in common/metric_names.hpp, never at call sites."""
    if path.replace(os.sep, "/") == TELEMETRY_ALLOWED:
        return
    for m in TELEMETRY_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "telemetry",
                    f"metric registered via {m.group(1)}(\"...\") with an "
                    "inline name; use a MetricSpec constant from "
                    "common/metric_names.hpp"))


def check_env_read(path: str, code: str, findings: list) -> None:
    """Environment access is recorded by xfci::env so run reports list
    every variable a result depended on."""
    if path.replace(os.sep, "/").startswith(ENV_ALLOWED):
        return
    for m in ENV_TOKEN.finditer(code):
        findings.append(
            Finding(path, line_of(code, m.start()), "env-read",
                    f"raw {m.group(1)}() outside src/common/env.*; go "
                    "through xfci::env::get() so the read is recorded in "
                    "the run report"))


INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"([^"]+)"',
                        re.MULTILINE)


def check_include_cycles(graph: dict, edge_lines: dict,
                         findings: list) -> None:
    """graph maps src/-relative header paths to the headers they quote-
    include; any strongly-connected inclusion is reported with its path."""
    color = {}  # absent = white, 1 = on stack, 2 = done
    stack = []
    reported = set()

    def dfs(u):
        color[u] = 1
        stack.append(u)
        for v in sorted(graph.get(u, ())):
            state = color.get(v)
            if state == 1:
                cycle = stack[stack.index(v):] + [v]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    findings.append(
                        Finding("src/" + cycle[0],
                                edge_lines.get((cycle[0], cycle[1]), 1),
                                "include-cycles",
                                "header include cycle: " +
                                " -> ".join(cycle)))
            elif state is None:
                dfs(v)
        stack.pop()
        color[u] = 2

    for u in sorted(graph):
        if u not in color:
            dfs(u)


def lint_tree(root: str) -> list:
    findings = []
    src = os.path.join(root, "src")
    include_graph = {}
    edge_lines = {}
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if not fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as fh:
                raw = fh.read()
            code = strip_comments_and_strings(raw)
            check_raw_assert(rel, code, findings)
            check_catch_swallow(rel, code, findings)
            check_layering(rel, raw, code, findings)
            check_serve_layering(rel, raw, findings)
            check_ipc_fence(rel, code, findings)
            check_timing(rel, code, findings)
            check_simd(rel, raw, code, findings)
            check_lock_annotations(rel, raw, code, findings)
            check_determinism(rel, raw, code, findings)
            check_env_read(rel, code, findings)
            check_telemetry_names(rel, code, findings)
            if fn.endswith((".hpp", ".h")):
                check_using_namespace(rel, code, findings)
                check_pragma_once(rel, raw, findings)
                hdr = os.path.relpath(path, src).replace(os.sep, "/")
                include_graph[hdr] = []
                for m in INCLUDE_RE.finditer(raw):
                    include_graph[hdr].append(m.group(1))
                    edge_lines[(hdr, m.group(1))] = line_of(raw, m.start())
            if any(rel.startswith(d) for d in SRC_SUBDIRS_ENTRY) and \
               fn.endswith((".cpp", ".cc")):
                check_entry_require(rel, raw, code, findings)
    # Keep only edges between collected headers (system/installed includes
    # cannot participate in a src/ cycle).
    include_graph = {
        h: [i for i in incs if i in include_graph]
        for h, incs in include_graph.items()
    }
    check_include_cycles(include_graph, edge_lines, findings)
    return findings


def compile_headers(root: str, cxx: str) -> list:
    findings = []
    src = os.path.join(root, "src")
    headers = []
    for dirpath, _dirnames, filenames in os.walk(src):
        headers += [os.path.join(dirpath, f) for f in filenames
                    if f.endswith((".hpp", ".h"))]
    for path in sorted(headers):
        rel = os.path.relpath(path, src)
        proc = subprocess.run(
            [cxx, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
             "-I", src, "-x", "c++", "-"],
            input=f'#include "{rel}"\n',
            capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            first = proc.stderr.strip().splitlines()
            findings.append(
                Finding(os.path.relpath(path, root), 1, "self-contained",
                        "header does not compile standalone: " +
                        (first[0] if first else "unknown error")))
    return findings


# ------------------------------------------------------- suppression budget --

BUDGET_FILE = ".lint-budget"
BUDGET_KEYS = ("no-thread-safety-analysis", "nolint", "lint-escape")


def count_suppressions(root: str) -> dict:
    counts = {k: 0 for k in BUDGET_KEYS}
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if not fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as fh:
                raw = fh.read()
            if rel != ANNOTATIONS_HEADER:
                code = strip_comments_and_strings(raw)
                counts["no-thread-safety-analysis"] += len(
                    re.findall(r"\b%s\b" % TSA_SUPPRESS, code))
            # NOLINT and `lint:` escapes live in comments: count on raw.
            counts["nolint"] += len(re.findall(r"\bNOLINT", raw))
            counts["lint-escape"] += len(re.findall(r"//\s*lint:", raw))
    return counts


def check_suppression_budget(root: str, findings: list) -> None:
    """The budget must match reality exactly: a new suppression fails until
    the budget is raised in the same (reviewable) change, and a removed one
    fails until the budget is ratcheted down so slack never accumulates."""
    budget_path = os.path.join(root, BUDGET_FILE)
    if not os.path.isfile(budget_path):
        findings.append(
            Finding(BUDGET_FILE, 1, "suppression-budget",
                    f"missing {BUDGET_FILE}; record the current counts "
                    "(see --help) so suppression growth is reviewable"))
        return
    budget = {}
    with open(budget_path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or not parts[1].isdigit():
                findings.append(
                    Finding(BUDGET_FILE, lineno, "suppression-budget",
                            f"unparsable budget line `{line}`; expected "
                            "`<key> <count>`"))
                return
            budget[parts[0]] = int(parts[1])
    counts = count_suppressions(root)
    for key in BUDGET_KEYS:
        actual, allowed = counts[key], budget.get(key)
        if allowed is None:
            findings.append(
                Finding(BUDGET_FILE, 1, "suppression-budget",
                        f"no `{key}` entry; add `{key} {actual}`"))
        elif actual > allowed:
            findings.append(
                Finding(BUDGET_FILE, 1, "suppression-budget",
                        f"{key} suppressions grew: {actual} in src/ vs "
                        f"budget {allowed}; remove the new suppression or "
                        "raise the budget explicitly in this change"))
        elif actual < allowed:
            findings.append(
                Finding(BUDGET_FILE, 1, "suppression-budget",
                        f"{key} budget is slack: {actual} in src/ vs budget "
                        f"{allowed}; ratchet the budget down to {actual}"))


# --------------------------------------------------------------------- fix --

FIX_STUB = ("// justification: TODO — document why the thread-safety "
            "analysis must be off here.")


def _fix_pragma_once(raw: str) -> str:
    lines = raw.splitlines(keepends=True)
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped == "#pragma once":
            return raw
        lines.insert(i, "#pragma once\n\n")
        return "".join(lines)
    lines.append("#pragma once\n")  # header of comments/blank lines only
    return "".join(lines)


def _fix_justifications(raw: str) -> str:
    code = strip_comments_and_strings(raw)
    need = set()
    raw_lines = raw.splitlines()
    for m in re.finditer(r"\b%s\b" % TSA_SUPPRESS, code):
        lineno = line_of(code, m.start())
        if not _has_justification(raw_lines, lineno):
            need.add(lineno)
    if not need:
        return raw
    lines = raw.splitlines(keepends=True)
    for lineno in sorted(need, reverse=True):
        indent = re.match(r"[ \t]*", lines[lineno - 1]).group(0)
        lines.insert(lineno - 1, indent + FIX_STUB + "\n")
    return "".join(lines)


def fix_tree(root: str, apply_fixes: bool) -> int:
    """Applies (or previews) the mechanical fixes; returns the number of
    files that change."""
    changed = 0
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if not fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as fh:
                raw = fh.read()
            fixed = raw
            if fn.endswith((".hpp", ".h")):
                fixed = _fix_pragma_once(fixed)
            if rel != ANNOTATIONS_HEADER:
                fixed = _fix_justifications(fixed)
            if fixed == raw:
                continue
            changed += 1
            if apply_fixes:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(fixed)
                print(f"fixed {rel}")
            else:
                sys.stdout.writelines(difflib.unified_diff(
                    raw.splitlines(keepends=True),
                    fixed.splitlines(keepends=True),
                    fromfile="a/" + rel, tofile="b/" + rel))
    return changed


# --------------------------------------------------------------- self-test --

GOOD_CPP = """\
#include "common/error.hpp"
namespace xfci::fci {
void apply_block(std::span<const double> c) {
  XFCI_REQUIRE(!c.empty(), "empty block");
}
void helper(std::vector<double>& v) {  // lint: no-require
  v.clear();
}
}  // namespace xfci::fci
"""

BAD_ASSERT_CPP = """\
#include <cassert>
namespace xfci::fci {
void f(int x) { assert(x > 0); }
void g() { abort(); }
}  // namespace xfci::fci
"""

BAD_HEADER = """\
#pragma once
using namespace std;
"""

BAD_NO_PRAGMA = """\
#ifndef GUARD_H
#define GUARD_H
#endif
"""

BAD_CATCH_CPP = """\
namespace xfci::fci {
void f() {
  try {
    g();
  } catch (...) {
  }
}
}  // namespace xfci::fci
"""

GOOD_CATCH_CPP = """\
#include <exception>
namespace xfci::fci {
void f(std::exception_ptr& err) {
  try {
    g();
  } catch (...) {
    if (!err) err = std::current_exception();
  }
  try {
    h();
  } catch (...) {
    throw;
  }
}
}  // namespace xfci::fci
"""

BAD_LAYER_CPP = """\
#include "parallel/machine.hpp"
namespace xfci::fcp {
void f() { pv::Machine m(4); (void)m; }
}  // namespace xfci::fcp
"""

GOOD_LAYER_CPP = """\
// The simulated pv::Machine (parallel/machine.hpp) backs this path -- a
// comment mention must not trip the layering rule.
#include "parallel/ddi.hpp"
namespace xfci::fcp {
void f() {}
}  // namespace xfci::fcp
"""

BAD_IPC_CPP = """\
#include <sys/mman.h>
#include <unistd.h>
namespace xfci::fcp {
void f() {
  int fd = shm_open("/x", 0, 0);
  if (fork() == 0) kill(getppid(), 9);
  (void)fd;
}
}  // namespace xfci::fcp
"""

GOOD_IPC_CPP = """\
// shm_open / fork / kill live in the process backend; a comment mention
// (or the word forklift) must not trip the ipc fence.
namespace xfci::fcp {
void forklift_kill_switch();  // identifiers containing the tokens are fine
void f() { forklift_kill_switch(); }
}  // namespace xfci::fcp
"""

BAD_TIMING_CPP = """\
#include <chrono>
namespace xfci::fci {
double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace xfci::fci
"""

BAD_SIMD_CPP = """\
#include <immintrin.h>
namespace xfci::fci {
double hsum(__m256d v) {
  return _mm256_cvtsd_f64(v);
}
}  // namespace xfci::fci
"""

BAD_ENTRY_CPP = """\
#include "common/error.hpp"
namespace xfci::fci {
void unchecked_entry(std::span<const double> c, std::span<double> s) {
  for (std::size_t i = 0; i < c.size(); ++i) s[i] = c[i];
}
}  // namespace xfci::fci
"""

BAD_RAW_MUTEX_CPP = """\
#include <mutex>
namespace xfci::pv {
class Queue {
  std::mutex mu_;
  std::condition_variable cv_;
};
}  // namespace xfci::pv
"""

BAD_BARE_SUPPRESS_CPP = """\
#include "common/annotations.hpp"
namespace xfci::pv {
void poke() XFCI_NO_THREAD_SAFETY_ANALYSIS {}
}  // namespace xfci::pv
"""

GOOD_JUSTIFIED_SUPPRESS_CPP = """\
#include "common/annotations.hpp"
namespace xfci::pv {
// justification: trusted base — the primitive below is unannotated.
void poke() XFCI_NO_THREAD_SAFETY_ANALYSIS {}
}  // namespace xfci::pv
"""

BAD_UNGUARDED_CAPABILITY_HPP = """\
#pragma once
#include "common/sync.hpp"
namespace xfci::pv {
class Lonely {
  xfci::sync::Mutex mu_;
  long count_ = 0;
};
}  // namespace xfci::pv
"""

GOOD_LOCK_HPP = """\
#pragma once
#include "common/annotations.hpp"
#include "common/sync.hpp"
namespace xfci::pv {
class Guarded {
  void bump() XFCI_REQUIRES(mu_) { ++count_; }
  xfci::sync::Mutex mu_;
  long count_ XFCI_GUARDED_BY(mu_) = 0;
};
}  // namespace xfci::pv
"""

BAD_UNORDERED_MAP_CPP = """\
#include <unordered_map>
namespace xfci::fci {
std::unordered_map<int, double> weights;
}  // namespace xfci::fci
"""

BAD_UNORDERED_SET_HPP = """\
#pragma once
#include <unordered_set>
namespace xfci::fci {
using Seen = std::unordered_set<long>;
}  // namespace xfci::fci
"""

GOOD_UNORDERED_ESCAPE_CPP = """\
#include <unordered_map>
namespace xfci::fci {
std::unordered_map<int, double> cache;  // lint: unordered-ok (lookup only)
}  // namespace xfci::fci
"""

BAD_GETENV_CPP = """\
#include <cstdlib>
namespace xfci::fci {
const char* home() { return std::getenv("HOME"); }
}  // namespace xfci::fci
"""

BAD_SETENV_CPP = """\
#include <cstdlib>
namespace xfci::fci {
void pin() { setenv("XFCI_GEMM_KERNEL", "portable", 1); }
}  // namespace xfci::fci
"""

SUPPRESSED_SRC_CPP = """\
#include "common/annotations.hpp"
namespace xfci::pv {
// justification: self-test specimen.
void poke() XFCI_NO_THREAD_SAFETY_ANALYSIS {}
}  // namespace xfci::pv
"""

BAD_NO_PRAGMA_FIXABLE = """\
// A leading comment the fix must keep above the inserted pragma.
#include <vector>
namespace xfci::fci {
inline std::vector<int> v;
}  // namespace xfci::fci
"""


def self_test() -> int:
    failures = []
    cases = 0

    def expect_findings(name, found, rule, want):
        hit = [f for f in found if f.rule == rule]
        if want and not hit:
            failures.append(f"{name}: expected a {rule} finding, got "
                            f"{[str(f) for f in found]}")
        if not want and hit:
            failures.append(f"{name}: unexpected {rule} findings "
                            f"{[str(f) for f in hit]}")

    def expect(name, filename, content, rule, want, subdir="fci"):
        nonlocal cases
        cases += 1
        with tempfile.TemporaryDirectory() as tmp:
            subdir = os.path.join(tmp, "src", subdir)
            os.makedirs(subdir)
            with open(os.path.join(subdir, filename), "w",
                      encoding="utf-8") as fh:
                fh.write(content)
            expect_findings(name, lint_tree(tmp), rule, want)

    def expect_tree(name, files, rule, want):
        """Like expect(), but `files` maps src/-relative paths to contents
        so tree-level rules (include cycles) get a multi-file specimen."""
        nonlocal cases
        cases += 1
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, "src", rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(content)
            expect_findings(name, lint_tree(tmp), rule, want)

    def expect_budget(name, budget, content, want):
        nonlocal cases
        cases += 1
        with tempfile.TemporaryDirectory() as tmp:
            subdir = os.path.join(tmp, "src", "parallel")
            os.makedirs(subdir)
            with open(os.path.join(subdir, "x.cpp"), "w",
                      encoding="utf-8") as fh:
                fh.write(content)
            if budget is not None:
                with open(os.path.join(tmp, BUDGET_FILE), "w",
                          encoding="utf-8") as fh:
                    fh.write(budget)
            findings = []
            check_suppression_budget(tmp, findings)
            expect_findings(name, findings, "suppression-budget", want)

    def expect_fix(name, filename, content, rule, subdir="fci"):
        """--fix must preview without writing, clear the finding when
        applied, and be a fixed point on its own output."""
        nonlocal cases
        cases += 1
        import contextlib
        import io
        with tempfile.TemporaryDirectory() as tmp:
            subdir_path = os.path.join(tmp, "src", subdir)
            os.makedirs(subdir_path)
            path = os.path.join(subdir_path, filename)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(content)
            with contextlib.redirect_stdout(io.StringIO()) as buf:
                pending = fix_tree(tmp, apply_fixes=False)
            with open(path, encoding="utf-8") as fh:
                after_dry = fh.read()
            if pending != 1 or after_dry != content:
                failures.append(f"{name}: dry run must report one pending "
                                "fix and leave the file untouched")
                return
            if "---" not in buf.getvalue():
                failures.append(f"{name}: dry run printed no unified diff")
            with contextlib.redirect_stdout(io.StringIO()):
                fix_tree(tmp, apply_fixes=True)
            expect_findings(name + " (post-fix lint)", lint_tree(tmp),
                            rule, False)
            with contextlib.redirect_stdout(io.StringIO()):
                again = fix_tree(tmp, apply_fixes=False)
            if again != 0:
                failures.append(f"{name}: fix is not idempotent — a second "
                                "run still wants changes")

    expect("seeded raw assert", "bad_assert.cpp", BAD_ASSERT_CPP,
           "raw-assert", True)
    expect("seeded using-namespace header", "bad.hpp", BAD_HEADER,
           "using-namespace", True)
    expect("seeded missing pragma once", "bad_guard.hpp", BAD_NO_PRAGMA,
           "pragma-once", True)
    expect("seeded unchecked entry point", "bad_entry.cpp", BAD_ENTRY_CPP,
           "entry-require", True)
    expect("checked entry point passes", "good.cpp", GOOD_CPP,
           "entry-require", False)
    expect("checked entry point no assert", "good.cpp", GOOD_CPP,
           "raw-assert", False)
    # static_assert must not trip the raw-assert rule.
    expect("static_assert allowed", "sa.cpp",
           "static_assert(1 + 1 == 2);\n", "raw-assert", False)
    # Commented-out assert must not trip it either.
    expect("commented assert allowed", "ca.cpp",
           "// assert(false) would be wrong here\n", "raw-assert", False)
    expect("seeded swallowing catch-all", "bad_catch.cpp", BAD_CATCH_CPP,
           "catch-swallow", True)
    expect("storing/rethrowing catch-all passes", "good_catch.cpp",
           GOOD_CATCH_CPP, "catch-swallow", False)
    expect("seeded machine use outside src/parallel", "bad_layer.cpp",
           BAD_LAYER_CPP, "layering", True)
    expect("comment mention of machine allowed", "good_layer.cpp",
           GOOD_LAYER_CPP, "layering", False)
    expect("seeded serve include in the fci layer", "bad_serve.cpp",
           '#include "serve/engine.hpp"\nvoid f();\n',
           "serve-layering", True)
    expect("seeded serve include in a header", "bad_serve.hpp",
           '#pragma once\n#include "serve/setup_cache.hpp"\n',
           "serve-layering", True, subdir="fci_parallel")
    expect("serve include allowed inside src/serve", "engine.cpp",
           '#include "serve/engine.hpp"\nvoid f();\n',
           "serve-layering", False, subdir="serve")
    expect("comment mention of serve allowed", "doc_serve.cpp",
           '// the serve/engine.hpp layer caches these setups\nvoid f();\n',
           "serve-layering", False)
    expect("seeded raw ipc syscalls outside src/parallel", "bad_ipc.cpp",
           BAD_IPC_CPP, "ipc-fence", True)
    expect("ipc syscalls allowed in shm_ipc", "shm_ipc.cpp",
           BAD_IPC_CPP, "ipc-fence", False, subdir="parallel")
    expect("ipc syscalls allowed in process_ddi", "process_ddi.cpp",
           BAD_IPC_CPP, "ipc-fence", False, subdir="parallel")
    expect("ipc fenced elsewhere in src/parallel too", "thread_team.cpp",
           BAD_IPC_CPP, "ipc-fence", True, subdir="parallel")
    expect("comment/identifier ipc mentions allowed", "good_ipc.cpp",
           GOOD_IPC_CPP, "ipc-fence", False)
    expect("seeded raw clock read", "bad_clock.cpp", BAD_TIMING_CPP,
           "timing", True)
    expect("clock read allowed in src/parallel", "backend_clock.cpp",
           BAD_TIMING_CPP, "timing", False, subdir="parallel")
    expect("clock read allowed in the timer", "timer.hpp",
           "#pragma once\n" + BAD_TIMING_CPP, "timing", False,
           subdir="common")
    expect("comment mention of chrono allowed", "good_clock.cpp",
           "// std::chrono stays behind xfci::Timer\nvoid f();\n",
           "timing", False)
    expect("seeded intrinsics outside the kernel TUs", "bad_simd.cpp",
           BAD_SIMD_CPP, "simd", True)
    expect("intrinsics allowed in a kernel TU", "gemm_kernels_avx9.cpp",
           BAD_SIMD_CPP, "simd", False, subdir="linalg")
    expect("comment mention of intrinsics allowed", "good_simd.cpp",
           "// the avx512 kernel uses _mm512_fmadd_pd\nvoid f();\n",
           "simd", False)

    # lock-annotations: raw primitives, unguarded capabilities, bare
    # suppressions.
    expect("seeded raw std::mutex member", "bad_queue.cpp",
           BAD_RAW_MUTEX_CPP, "lock-annotations", True, subdir="parallel")
    expect("seeded bare thread-safety suppression", "bad_suppress.cpp",
           BAD_BARE_SUPPRESS_CPP, "lock-annotations", True, subdir="parallel")
    expect("seeded unguarded sync::Mutex member", "lonely.hpp",
           BAD_UNGUARDED_CAPABILITY_HPP, "lock-annotations", True,
           subdir="parallel")
    expect("annotated class passes", "guarded.hpp", GOOD_LOCK_HPP,
           "lock-annotations", False, subdir="parallel")
    expect("justified suppression passes", "justified.cpp",
           GOOD_JUSTIFIED_SUPPRESS_CPP, "lock-annotations", False,
           subdir="parallel")
    expect("raw primitives allowed in the sync wrapper", "sync.hpp",
           "#pragma once\n#include <mutex>\nstd::mutex m;\n",
           "lock-annotations", False, subdir="common")
    expect("comment mention of std::mutex allowed", "doc.cpp",
           "// wraps std::mutex behind sync::Mutex\nvoid f();\n",
           "lock-annotations", False, subdir="parallel")

    # determinism: hash containers vs bitwise-reproducible outputs.
    expect("seeded unordered_map", "bad_umap.cpp", BAD_UNORDERED_MAP_CPP,
           "determinism", True)
    expect("seeded unordered_set header", "bad_uset.hpp",
           BAD_UNORDERED_SET_HPP, "determinism", True)
    expect("escaped unordered_map passes", "escaped.cpp",
           GOOD_UNORDERED_ESCAPE_CPP, "determinism", False)
    expect("comment mention of unordered allowed", "doc_unordered.cpp",
           "// std::unordered_map would break determinism here\nvoid f();\n",
           "determinism", False)

    # include-cycles: the src/ header graph must stay a DAG.
    expect_tree("seeded two-header cycle", {
        "fci/a.hpp": '#pragma once\n#include "fci/b.hpp"\n',
        "fci/b.hpp": '#pragma once\n#include "fci/a.hpp"\n',
    }, "include-cycles", True)
    expect_tree("seeded three-header cycle", {
        "fci/a.hpp": '#pragma once\n#include "fci/b.hpp"\n',
        "fci/b.hpp": '#pragma once\n#include "parallel/c.hpp"\n',
        "parallel/c.hpp": '#pragma once\n#include "fci/a.hpp"\n',
    }, "include-cycles", True)
    expect_tree("seeded self-include", {
        "fci/a.hpp": '#pragma once\n#include "fci/a.hpp"\n',
    }, "include-cycles", True)
    expect_tree("acyclic diamond passes", {
        "fci/top.hpp": '#pragma once\n#include "fci/l.hpp"\n'
                       '#include "fci/r.hpp"\n',
        "fci/l.hpp": '#pragma once\n#include "common/base.hpp"\n',
        "fci/r.hpp": '#pragma once\n#include "common/base.hpp"\n',
        "common/base.hpp": "#pragma once\n",
    }, "include-cycles", False)

    # telemetry: metric names live in common/metric_names.hpp only.
    bad_inline_metric = (
        '#include "common/telemetry.hpp"\n'
        'void f() {\n'
        '  auto c = xfci::obs::telemetry().counter("xfci_ad_hoc_total");\n'
        '}\n')
    expect("seeded inline metric name", "bad_metric.cpp",
           bad_inline_metric, "telemetry", True)
    expect("seeded inline histogram name", "bad_hist.cpp",
           'void f() { reg.histogram("xfci_lat_seconds", {}); }\n',
           "telemetry", True)
    expect("MetricSpec constant registration passes", "good_metric.cpp",
           '#include "common/metric_names.hpp"\n'
           'void f() { auto c = reg.counter(xfci::obs::metric::kGemmCalls); '
           '}\n',
           "telemetry", False)
    expect("comment mention of counter(\"...\") allowed", "doc_metric.cpp",
           '// never write counter("name") inline\nvoid f();\n',
           "telemetry", False)
    expect("metric_names.hpp itself is exempt", "metric_names.hpp",
           '#pragma once\ninline int counter(const char*);\n'
           'inline int x = counter("xfci_x_total");\n',
           "telemetry", False, subdir="common")

    # env-read: raw environment access is fenced to src/common/env.*.
    expect("seeded raw getenv", "bad_env.cpp", BAD_GETENV_CPP,
           "env-read", True)
    expect("seeded raw setenv", "bad_setenv.cpp", BAD_SETENV_CPP,
           "env-read", True)
    expect("getenv allowed in the env layer", "env.cpp", BAD_GETENV_CPP,
           "env-read", False, subdir="common")
    expect("comment mention of getenv allowed", "doc_env.cpp",
           "// std::getenv stays behind xfci::env::get\nvoid f();\n",
           "env-read", False)

    # suppression-budget: exact-match ratchet against .lint-budget.
    budget_ok = ("no-thread-safety-analysis 1\n"
                 "nolint 0\n"
                 "lint-escape 0\n")
    expect_budget("matching budget passes", budget_ok, SUPPRESSED_SRC_CPP,
                  False)
    expect_budget("suppression growth fails",
                  budget_ok.replace("analysis 1", "analysis 0"),
                  SUPPRESSED_SRC_CPP, True)
    expect_budget("slack budget fails",
                  budget_ok.replace("analysis 1", "analysis 2"),
                  SUPPRESSED_SRC_CPP, True)
    expect_budget("missing budget file fails", None, SUPPRESSED_SRC_CPP,
                  True)
    expect_budget("missing budget key fails", "nolint 0\nlint-escape 1\n",
                  SUPPRESSED_SRC_CPP, True)

    # --fix: preview-only by default, clears the finding, idempotent.
    expect_fix("fix inserts #pragma once after leading comments",
               "fixable.hpp", BAD_NO_PRAGMA_FIXABLE, "pragma-once")
    expect_fix("fix inserts pragma before an include guard",
               "guarded_old.hpp", BAD_NO_PRAGMA, "pragma-once")
    expect_fix("fix stubs a justification comment", "bare.cpp",
               BAD_BARE_SUPPRESS_CPP, "lock-annotations",
               subdir="parallel")

    if failures:
        print("xfci_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print(f"xfci_lint self-test passed ({cases} cases).")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--compile-headers", action="store_true",
                    help="also compile every header standalone")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                    help="compiler for --compile-headers")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter's own seeded-violation tests")
    ap.add_argument("--fix", action="store_true",
                    help="mechanical fixes: insert missing #pragma once, "
                         "stub missing justification comments; prints a "
                         "unified diff unless --apply is given")
    ap.add_argument("--apply", action="store_true",
                    help="with --fix: write the fixes instead of previewing")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.apply and not args.fix:
        print("xfci_lint: --apply requires --fix", file=sys.stderr)
        return 2

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"xfci_lint: no src/ under {root}", file=sys.stderr)
        return 2

    if args.fix:
        changed = fix_tree(root, apply_fixes=args.apply)
        if args.apply:
            print(f"xfci_lint: fixed {changed} file(s).")
            return 0
        if changed:
            print(f"xfci_lint: {changed} file(s) need fixes "
                  "(re-run with --fix --apply).", file=sys.stderr)
            return 1
        print("xfci_lint: nothing to fix.")
        return 0

    findings = lint_tree(root)
    check_suppression_budget(root, findings)
    if args.compile_headers:
        findings += compile_headers(root, args.cxx)

    for f in findings:
        print(f)
    if findings:
        print(f"xfci_lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("xfci_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
